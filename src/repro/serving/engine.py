"""The serving engine: sessions, per-layer cross-client batching, blinding.

The cloud side of the wire protocol.  A :class:`ServingEngine` owns a
:class:`~repro.serving.registry.ModelRegistry` and processes
:class:`~repro.serving.wire.Message` requests from any number of
transports/worker threads:

``hello``
    Parameter handshake.  The client's parameter description must match
    the model's exactly (plans and mask encodings are parameter-bound);
    a mismatch is rejected with a reason instead of producing garbage
    ciphertexts later.  The reply carries the model's rotation-step set
    so the client generates exactly the Galois keys the compiled plans
    need.
``galois_keys``
    One-time per-session key upload (the Gazelle setup transmission).
``linear``
    One protocol round: the client's freshly encrypted activations in,
    the blinded layer outputs plus the dense mask block out.

Requests for the same ``(model, layer)`` that are pending concurrently
are merged by a :class:`_LayerBatcher` into a single
:meth:`~repro.scheduling.plan.ConvPlan.execute_batch` call, so the HE
work of ``B`` clients rides the batched ``(k, B, n)`` NTT path of
:class:`~repro.bfv.ntt_batch.RnsNttEngine` -- the serving-side analogue
of the paper's on-chip batching discipline.  Each client still key-
switches under its own Galois keys and is blinded with its own mask;
outputs are bit-identical to serial execution.

Per-session traffic is tallied with
:class:`~repro.protocol.messages.TrafficLog` (blob bytes, per-layer
labels, round counts), matching the accounting of the in-process
:class:`~repro.protocol.gazelle.GazelleProtocol`.
"""

from __future__ import annotations

import hmac
import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..bfv.counters import GLOBAL_COUNTERS
from ..bfv.serialize import deserialize_ciphertext, deserialize_galois_keys, serialize_ciphertext
from ..nn.layers import ConvLayer
from ..protocol.gazelle import blind_ciphertext_rows
from ..protocol.messages import TrafficLog
from ..scheduling.layouts import unpack_image
from .admission import busy_message
from .registry import ModelEntry, ModelRegistry
from .tracing import HE_OP_FIELDS, NULL_TRACER
from .wire import TRACE_META_KEY, Message, error_message

logger = logging.getLogger(__name__)


class SessionState(Enum):
    """Explicit per-session protocol state.

    The lifecycle is ``AWAIT_KEYS -> READY`` (``close`` removes the
    session from the table entirely, so there is no terminal state to
    represent).  ``galois_keys`` is accepted in *either* state -- a
    re-upload in ``READY`` replaces the key handle idempotently, which is
    what makes the transport's replay-on-reconnect safe -- while
    ``linear`` requires ``READY``.  Because the state lives on the
    session (keyed by id in the engine) and not on a connection or a
    thread, a session survives its transport: a client may reconnect, or
    hop between the threaded and async front ends, mid-inference.
    """

    AWAIT_KEYS = "await_keys"
    READY = "ready"


@dataclass
class _Session:
    """Per-client serving state: model binding, keys, traffic tally.

    ``galois_keys`` holds whatever the engine's execution backend
    returned from ``prepare_keys`` -- the deserialized
    :class:`~repro.bfv.keys.GaloisKeys` for in-process execution, or an
    opaque per-session handle for remote/sharded backends.
    ``fallback_keys`` always holds the deserialized keys themselves, so
    the engine can degrade a layer call to its in-process
    :class:`LocalExecutor` when the backend fails (remote handles are
    opaque and useless to the local path).
    """

    session_id: str
    entry: ModelEntry
    galois_keys: object | None = None
    fallback_keys: object | None = None
    traffic: TrafficLog = field(default_factory=TrafficLog)
    state: SessionState = SessionState.AWAIT_KEYS
    tenant: str = "default"
    #: Last request instant (``time.monotonic()``); drives the idle TTL.
    last_used: float = field(default_factory=time.monotonic)


class ExecutionBackendError(RuntimeError):
    """A pluggable execution backend failed to run a layer.

    Raised by executors (e.g. the sharded pool) for backend-level
    failures -- a dead worker, an IPC timeout, a model missing from the
    workers' artifact set.  The engine converts it into a protocol
    ``error`` reply instead of letting it tear down the transport.
    """


class LocalExecutor:
    """The default execution backend: run compiled plans in this process.

    Executors are the engine's seam for *where* plan math runs.  The
    contract (all three methods):

    ``prepare_keys(entry, key_id, blob, keys)``
        Called once per session after the engine validated the uploaded
        Galois keys; returns the object stored as the session's key
        handle and later passed back to ``execute``.
    ``release_keys(key_id)``
        The session closed or was evicted; free anything held for it.
    ``execute(entry, layer, batch_inputs, batch_handles, deadline=None)``
        Run one (possibly cross-client batched) layer call.  Returns one
        ``list[Ciphertext]`` per request -- ``co`` ciphertexts for a
        convolution, one for an FC layer -- bit-identical to
        ``plan.execute`` under each request's own keys.  ``deadline`` is
        an absolute ``time.monotonic()`` instant (or ``None``); remote
        backends enforce it, the in-process path ignores it (a started
        plan execution is never abandoned half-way).

    The other implementation is :class:`~repro.serving.shards
    .ShardExecutor`, which fans layer calls out over a
    :class:`~repro.serving.shards.ShardPool` of forked workers (queue or
    shared-memory-ring channels) and/or remote ``tcp://`` workers --
    all bit-identical to this executor by the conformance suite.
    """

    def prepare_keys(self, entry, key_id, blob, keys):
        return keys

    def release_keys(self, key_id):
        pass

    def execute(
        self, entry: ModelEntry, layer, batch_inputs, batch_handles,
        deadline=None, trace=None,
    ):
        # ``trace`` (one optional SpanContext per request) is part of the
        # executor contract for backends that emit their own spans; the
        # in-process path runs inside the engine's execute span already.
        plan = entry.plans[layer.name]
        if isinstance(layer, ConvLayer):
            return plan.execute_batch(batch_inputs, batch_handles)
        return [
            [ct]
            for ct in plan.execute_batch(
                [cts[0] for cts in batch_inputs], batch_handles
            )
        ]


class _BatchItem:
    """One pending layer request inside a :class:`_LayerBatcher`."""

    __slots__ = ("cts", "keys", "fallback_keys", "deadline", "event", "output",
                 "error", "trace_ctx", "wait_span")

    def __init__(self, cts, keys, fallback_keys=None, deadline=None):
        self.cts = cts
        self.keys = keys
        self.fallback_keys = fallback_keys
        self.deadline = deadline
        self.event = threading.Event()
        self.output = None
        self.error: BaseException | None = None
        #: Trace context of the submitting request (crosses into the
        #: leader's thread) and its open ``batch_wait`` span.
        self.trace_ctx = None
        self.wait_span = None


class _LayerBatcher:
    """Merge concurrently pending requests for one (model, layer) pair.

    The first request of a generation becomes the *leader*: it collects
    followers until ``max_batch`` are pending, the ``window_s`` deadline
    passes, or no new request has arrived for ``idle_gap_s`` (the burst
    is over -- waiting longer would be pure idle time), then executes the
    whole batch in one ``execute_batch`` call and distributes per-request
    outputs.  Followers block on their item's event.  A request arriving
    while a batch executes simply opens the next generation, so the
    engine never stalls behind a running batch.
    """

    def __init__(
        self, execute, max_batch: int, window_s: float, idle_gap_s: float = 0.005,
        metrics=None, tracer=None,
    ):
        self._execute = execute
        self.max_batch = max(1, int(max_batch))
        self.window_s = window_s
        self.idle_gap_s = idle_gap_s
        self._metrics = metrics
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: The ModelEntry this batcher executes against (set by the engine;
        #: used to prune batchers of replaced models).
        self.entry = None
        self._cond = threading.Condition()
        self._pending: list[_BatchItem] = []

    def submit(self, cts, keys, fallback_keys=None, deadline=None):
        item = _BatchItem(cts, keys, fallback_keys, deadline)
        parent = self._tracer.current()
        if parent is not None:
            # The wait span opens on the submitter's thread but closes on
            # the leader's, hence the detached begin/finish pair; the
            # context rides the item so the execute span can parent to
            # this request even though the leader runs the batch.
            item.trace_ctx = parent.context
            item.wait_span = self._tracer.begin("batch_wait", parent)
        with self._cond:
            self._pending.append(item)
            leader = len(self._pending) == 1
            if len(self._pending) >= self.max_batch:
                self._cond.notify_all()
        if leader:
            deadline = time.monotonic() + self.window_s
            with self._cond:
                last_size = len(self._pending)
                last_growth = time.monotonic()
                while len(self._pending) < self.max_batch:
                    now = time.monotonic()
                    quiet_for = now - last_growth
                    if now >= deadline or quiet_for >= self.idle_gap_s:
                        break
                    self._cond.wait(
                        min(deadline - now, self.idle_gap_s - quiet_for)
                    )
                    if len(self._pending) > last_size:
                        last_size = len(self._pending)
                        last_growth = time.monotonic()
                batch, self._pending = self._pending, []
            self._run(batch)
        item.event.wait()
        if item.error is not None:
            raise item.error
        return item.output

    def _run(self, batch: list[_BatchItem]) -> None:
        if self._metrics is not None:
            self._metrics.record_batch(len(batch))
        for item in batch:
            if item.wait_span is not None:
                item.wait_span.set(batch=len(batch)).finish()
        try:
            deadlines = [
                item.deadline for item in batch if item.deadline is not None
            ]
            outputs = self._execute(
                [item.cts for item in batch],
                [item.keys for item in batch],
                [item.fallback_keys for item in batch],
                min(deadlines) if deadlines else None,
                [item.trace_ctx for item in batch],
            )
            for item, output in zip(batch, outputs):
                item.output = output
        except BaseException as exc:  # surface to every waiter, don't hang
            for item in batch:
                item.error = exc
        finally:
            for item in batch:
                item.event.set()


class ServingEngine:
    """Multi-client private-inference server over the repro wire format."""

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: int = 8,
        batch_window_s: float = 0.02,
        max_sessions: int = 256,
        seed: int | None = None,
        executor=None,
        request_deadline_s: float | None = None,
        fallback_local: bool = True,
        session_ttl_s: float | None = None,
        metrics=None,
        admission=None,
        tracer=None,
        admin_token: str | None = None,
    ):
        self.registry = registry
        #: Shared secret for the ``admin`` wire message (``repro admin``).
        #: ``None`` disables the admin surface entirely: an unauthenticated
        #: deployment must not expose reload/drain/evict to anyone who can
        #: reach the serving port.
        self.admin_token = admin_token if admin_token else None
        #: Request tracer (default: shared no-op).  When enabled, it is
        #: also handed to a trace-aware executor (``ShardExecutor``) so
        #: shard envelopes and worker spans land in the same traces.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if (
            self.tracer.enabled
            and executor is not None
            and hasattr(executor, "tracer")
            and getattr(executor, "tracer") is None
        ):
            executor.tracer = self.tracer
        #: Where plan math runs: in-process by default, or a pluggable
        #: backend such as :class:`~repro.serving.shards.ShardExecutor`
        #: (see :class:`LocalExecutor` for the contract).
        self.executor = executor if executor is not None else LocalExecutor()
        self.max_batch = max(1, int(max_batch))
        self.batch_window_s = batch_window_s
        #: Soft per-request deadline (seconds per linear round), or
        #: ``None``.  Propagated into the backend as an absolute
        #: monotonic instant; a backend that cannot meet it fails the
        #: call and the engine degrades to the local executor.
        self.request_deadline_s = (
            None if not request_deadline_s else float(request_deadline_s)
        )
        #: When the execution backend fails a layer call
        #: (:class:`ExecutionBackendError`: pool below quorum, task out
        #: of attempts, deadline missed), re-run it on the in-process
        #: :class:`LocalExecutor` instead of failing the session.
        self.fallback_local = bool(fallback_local)
        self._local = (
            self.executor
            if isinstance(self.executor, LocalExecutor)
            else LocalExecutor()
        )
        self._stats_lock = threading.Lock()
        #: Layer calls served by the local fallback after a backend failure.
        self.degraded_calls = 0
        #: Backend failures observed (== degraded_calls unless fallback
        #: is off or the fallback itself failed).
        self.backend_failures = 0
        #: Session-table bound: clients that vanish without sending ``close``
        #: (crashes, dropped connections) must not leak their multi-MB Galois
        #: key sets forever, so the least-recently-used session is evicted
        #: once the table is full.  An evicted client's next request fails
        #: with "unknown session" and it simply reconnects.
        self.max_sessions = max(1, int(max_sessions))
        self._sessions: "OrderedDict[str, _Session]" = OrderedDict()
        self._batchers: dict[tuple[int, str], _LayerBatcher] = {}
        self._lock = threading.Lock()
        self._mask_lock = threading.Lock()
        # Blinding masks hide partial weight sums from *remote* clients, so
        # the default is OS entropy; pass a seed only for reproducible tests
        # (predictable masks let a client unmask the withheld slots).
        self._rng = np.random.default_rng(seed)
        self._next_session = 0
        #: Idle session TTL (seconds), or ``None`` to keep the pure-LRU
        #: behaviour.  A session idle longer than this has its Galois
        #: keys and TrafficLog dropped; the client simply re-handshakes.
        self.session_ttl_s = (
            None if not session_ttl_s else float(session_ttl_s)
        )
        self._last_sweep = time.monotonic()
        #: Optional :class:`~repro.serving.metrics.MetricsRegistry` and
        #: :class:`~repro.serving.admission.AdmissionController`; both
        #: default to off so library users and tests pay nothing.
        self.metrics = metrics
        self.admission = admission
        if metrics is not None:
            from .metrics import noise_floor_bits

            metrics.add_gauge("sessions", lambda: len(self._sessions))
            metrics.add_gauge("max_batch", lambda: self.max_batch)
            metrics.add_gauge("degraded_calls", lambda: self.degraded_calls)
            metrics.add_gauge(
                "backend_failures", lambda: self.backend_failures
            )
            metrics.add_gauge(
                "noise_headroom_bits",
                lambda: {
                    entry.name: noise_floor_bits(entry)
                    for entry in self.registry.entries()
                },
            )
            # Live-deployment gauges: which zoo generation is being
            # served, and whether a rolling upgrade is in progress
            # (0 when the executor has no shard pool).
            metrics.add_gauge(
                "zoo_generation",
                lambda: getattr(self.registry, "zoo_generation", 0),
            )
            metrics.add_gauge(
                "upgrading_slots",
                lambda: getattr(
                    getattr(self.executor, "pool", None),
                    "upgrading_slots", 0,
                ),
            )
            if admission is not None:
                metrics.add_gauge("admission", admission.stats)

    # -- dispatch -----------------------------------------------------------

    def handle(self, request: Message) -> Message:
        """Process one request message; always returns a reply message."""
        if self.session_ttl_s is not None:
            self._sweep_idle()
        handler = {
            "hello": self._handle_hello,
            "galois_keys": self._handle_galois_keys,
            "linear": self._handle_linear,
            "close": self._handle_close,
            "metrics": self._handle_metrics,
            "admin": self._handle_admin,
        }.get(request.kind)
        if handler is None:
            return error_message(f"unknown request kind {request.kind!r}")
        span = self.tracer.server_span("handle", request.meta, kind=request.kind)
        start = time.monotonic()
        with span:
            try:
                reply = handler(request)
            except (KeyError, ValueError, TypeError, ExecutionBackendError) as exc:
                reply = error_message(str(exc))
            span.set(outcome=reply.kind)
        if span.trace_id is not None:
            # Echo the trace id so clients can correlate replies with
            # server-side traces.
            reply.meta.setdefault(TRACE_META_KEY, {"trace_id": span.trace_id})
        if self.metrics is not None:
            self.metrics.record_request(
                request.kind, time.monotonic() - start, reply.kind
            )
        return reply

    def _handle_metrics(self, request: Message) -> Message:
        """The wire-level metrics scrape (same snapshot as HTTP /metrics)."""
        if self.metrics is None:
            return error_message("metrics are not enabled on this server")
        return Message("metrics_ok", {"metrics": self.metrics.snapshot()})

    # -- admin control plane -------------------------------------------------

    def _handle_admin(self, request: Message) -> Message:
        """Authenticated operator actions (``repro admin``).

        Disabled unless the engine was constructed with an
        ``admin_token``; every request must carry the matching token
        (compared with :func:`hmac.compare_digest`).  Actions run under
        their own tracer span even without client trace context, so
        operator interventions are visible in the same traces as the
        traffic they affect.
        """
        if not self.admin_token:
            return error_message(
                "admin is not enabled on this server "
                "(start it with --admin-token)"
            )
        token = str(request.meta.get("token", ""))
        if not hmac.compare_digest(str(self.admin_token), token):
            logger.warning("admin: rejected request with invalid token")
            return error_message("admin: invalid token")
        action = str(request.meta.get("action", ""))
        handler = {
            "status": self._admin_status,
            "reload-zoo": self._admin_reload_zoo,
            "drain-worker": self._admin_drain_worker,
            "evict-session": self._admin_evict_session,
            "drain-tenant": self._admin_drain_tenant,
        }.get(action)
        if handler is None:
            return error_message(
                f"admin: unknown action {action!r} (expected one of "
                "status, reload-zoo, drain-worker, evict-session, "
                "drain-tenant)"
            )
        # Admin requests usually arrive without trace context (the CLI is
        # not a traced client), but operator actions are exactly the events
        # one wants to see in a trace -- so start a fresh root when there
        # is no parent to attach to.
        parent = self.tracer.current()
        if parent is not None:
            span = self.tracer.span(f"admin:{action}")
        else:
            span = self.tracer.root_span(f"admin:{action}")
        with span:
            try:
                result = handler(request)
            except Exception as exc:  # noqa: BLE001 - reported to operator
                span.set(outcome="error")
                logger.warning("admin %s failed: %s", action, exc)
                return error_message(f"admin {action} failed: {exc}")
            span.set(outcome="ok")
        return Message("admin_ok", {"action": action, "result": result})

    def _admin_status(self, request: Message) -> dict:
        """Deployment status: health, zoo generation, pool upgrade state."""
        from .metrics import health_payload

        payload = health_payload(self)
        payload["zoo"] = {
            "dir": getattr(self.registry, "zoo_dir", None),
            "generation": getattr(self.registry, "zoo_generation", 0),
            "models": sorted(self.registry.names()),
        }
        pool = getattr(self.executor, "pool", None)
        if pool is not None:
            payload.setdefault("pool", {}).update(
                {
                    "draining_workers": pool.draining_workers(),
                    "upgrading_slots": pool.upgrading_slots,
                    "upgrades_total": pool.upgrades_total,
                    "artifact_dir": pool.artifact_dir,
                }
            )
        with self._lock:
            tenants: dict[str, int] = {}
            for session in self._sessions.values():
                tenants[session.tenant] = tenants.get(session.tenant, 0) + 1
        payload["tenants"] = tenants
        return payload

    def _admin_reload_zoo(self, request: Message) -> dict:
        """Swap in a new zoo generation, then roll it across the pool.

        The registry reload is the atomic front-end swap (new sessions
        bind the new generation; in-flight rounds finish on their pinned
        entries).  When the executor is a shard pool and the reload
        applied, the workers are then rolling-upgraded one at a time so
        quorum is never violated; ``rolling: false`` skips that step.
        """
        directory = request.meta.get("directory")
        summary = self.registry.reload_zoo(directory)
        pool = getattr(self.executor, "pool", None)
        if summary.get("applied") and pool is not None and bool(
            request.meta.get("rolling", True)
        ):
            summary["pool"] = pool.rolling_upgrade(
                getattr(self.registry, "zoo_dir", None)
            )
        return summary

    def _admin_drain_worker(self, request: Message) -> dict:
        """Drain (or resume) one shard worker out of the dispatch set."""
        pool = getattr(self.executor, "pool", None)
        if pool is None:
            raise ValueError("this server has no shard pool to drain")
        worker = request.meta.get("worker")
        if worker is None:
            raise ValueError("drain-worker requires a worker id")
        if bool(request.meta.get("resume", False)):
            return pool.resume_worker(int(worker))
        return pool.drain_worker(
            int(worker), wait_s=float(request.meta.get("wait_s", 30.0))
        )

    def _admin_evict_session(self, request: Message) -> dict:
        """Force-evict one session (keys and traffic log released)."""
        session_id = request.meta.get("session")
        if not session_id:
            raise ValueError("evict-session requires a session id")
        session_id = str(session_id)
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is not None:
            self._release_session(session_id)
            logger.info("admin: evicted session %s", session_id)
        return {"session": session_id, "evicted": session is not None}

    def _admin_drain_tenant(self, request: Message) -> dict:
        """Evict every session belonging to one tenant."""
        tenant = request.meta.get("tenant")
        if not tenant:
            raise ValueError("drain-tenant requires a tenant name")
        tenant = str(tenant)
        with self._lock:
            matched = [
                session_id
                for session_id, session in self._sessions.items()
                if session.tenant == tenant
            ]
            for session_id in matched:
                del self._sessions[session_id]
        for session_id in matched:
            self._release_session(session_id)
        if matched:
            logger.info(
                "admin: drained tenant %s (%d session(s))", tenant, len(matched)
            )
        return {"tenant": tenant, "evicted": sorted(matched)}

    def session_traffic(self, session_id: str) -> TrafficLog:
        """The per-session byte/round tally (server-side view)."""
        return self._session(session_id).traffic

    def _session(self, session_id: str) -> _Session:
        with self._lock:
            try:
                session = self._sessions[session_id]
            except KeyError:
                raise KeyError(f"unknown session {session_id!r}") from None
            self._sessions.move_to_end(session_id)
            session.last_used = time.monotonic()
            return session

    # -- session lifecycle ---------------------------------------------------

    def _release_session(self, session_id: str) -> None:
        """Free everything held for a session outside the table itself."""
        self.executor.release_keys(session_id)
        if self.admission is not None:
            self.admission.unbind(session_id)

    def evict_idle_sessions(self, ttl_s: float | None = None) -> list[str]:
        """Drop sessions idle longer than the TTL; returns evicted ids.

        Safe to call from any thread (the gateway runs it on a timer; the
        engine itself calls it lazily from :meth:`handle`).  Eviction
        releases the session's Galois keys -- both the executor handle and
        the in-process fallback copy -- and its TrafficLog; a client whose
        session was evicted gets "unknown session" on its next round and
        recovers by re-handshaking.
        """
        ttl = self.session_ttl_s if ttl_s is None else float(ttl_s)
        if ttl is None:
            return []
        now = time.monotonic()
        with self._lock:
            expired = [
                session_id
                for session_id, session in self._sessions.items()
                if now - session.last_used > ttl
            ]
            for session_id in expired:
                del self._sessions[session_id]
        for session_id in expired:
            self._release_session(session_id)
        if expired:
            logger.info(
                "evicted %d idle session(s) past the %.3gs TTL: %s",
                len(expired), ttl, ", ".join(expired),
            )
        return expired

    def _sweep_idle(self) -> None:
        """Rate-limited lazy TTL sweep, piggybacked on request handling."""
        now = time.monotonic()
        with self._lock:
            if now - self._last_sweep < min(1.0, self.session_ttl_s):
                return
            self._last_sweep = now
        self.evict_idle_sessions()

    # -- handshake ----------------------------------------------------------

    def _handle_hello(self, request: Message) -> Message:
        model_name, client_params = request.require("model", "params")
        entry = self.registry.get(model_name)
        reason = self.registry.params_compatible(entry, client_params)
        if reason is not None:
            return error_message(reason)
        tenant = str(request.meta.get("tenant", "default"))
        evicted = []
        with self._lock:
            while len(self._sessions) >= self.max_sessions:
                evicted_id, _evicted = self._sessions.popitem(last=False)
                evicted.append(evicted_id)
            session_id = f"s{self._next_session}"
            self._next_session += 1
            self._sessions[session_id] = _Session(
                session_id, entry, tenant=tenant
            )
        for evicted_id in evicted:
            self._release_session(evicted_id)
        if self.admission is not None:
            self.admission.bind(session_id, tenant)
        meta = {"session": session_id, **entry.handshake_meta()}
        return Message("hello_ok", meta)

    def _handle_galois_keys(self, request: Message) -> Message:
        session = self._session(request.require("session"))
        if len(request.blobs) != 1:
            return error_message("galois_keys expects exactly one key blob")
        blob = request.blobs[0]
        keys = deserialize_galois_keys(blob, session.entry.params)
        missing = [
            step
            for step in session.entry.rotation_steps
            if session.entry.scheme.galois_elt_for_step(step) not in keys
        ]
        if missing:
            return error_message(
                f"uploaded Galois keys missing rotation step(s) {missing}"
            )
        session.galois_keys = self.executor.prepare_keys(
            session.entry, session.session_id, blob, keys
        )
        session.fallback_keys = keys
        session.state = SessionState.READY
        session.traffic.send_to_cloud(len(blob), "galois_keys")
        return Message("keys_ok", {"session": session.session_id})

    def _handle_close(self, request: Message) -> Message:
        session_id = request.require("session")
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is not None:
            self._release_session(session_id)
        return Message("close_ok", {"session": session_id})

    # -- linear rounds -------------------------------------------------------

    def _handle_linear(self, request: Message) -> Message:
        session_id, layer_name = request.require("session", "layer")
        session = self._session(session_id)
        if session.state is not SessionState.READY:
            return error_message(
                f"session {session_id!r} has not uploaded Galois keys"
            )
        if self.admission is not None:
            with self.tracer.span("admission") as adm_span:
                wait = self.admission.try_admit(session_id)
                if wait is not None:
                    adm_span.set(outcome="busy", retry_after_s=wait)
            if wait is not None:
                return busy_message(wait, "server at capacity")
            try:
                return self._linear_round(session, layer_name, request)
            finally:
                self.admission.release()
        return self._linear_round(session, layer_name, request)

    def _linear_round(
        self, session: _Session, layer_name: str, request: Message
    ) -> Message:
        session_id = session.session_id
        entry = session.entry
        layer = entry.layer(layer_name)
        plan = entry.plans[layer_name]
        expected = plan.ci if isinstance(layer, ConvLayer) else 1
        if len(request.blobs) != expected:
            return error_message(
                f"layer {layer_name!r} expects {expected} ciphertext(s), "
                f"got {len(request.blobs)}"
            )
        with self.tracer.span("deserialize", blobs=len(request.blobs)):
            cts = [
                deserialize_ciphertext(blob, entry.params)
                for blob in request.blobs
            ]
        session.traffic.send_to_cloud(
            sum(len(blob) for blob in request.blobs), layer_name
        )
        start = time.monotonic()
        deadline = (
            start + self.request_deadline_s
            if self.request_deadline_s is not None
            else None
        )
        masked_cts, mask = self._run_layer(
            entry, layer, cts, session.galois_keys, session.fallback_keys,
            deadline,
        )
        if self.metrics is not None:
            self.metrics.record_layer(layer_name, time.monotonic() - start)
        with self.tracer.span("serialize"):
            ct_blobs = [
                serialize_ciphertext(ct, entry.params) for ct in masked_cts
            ]
            mask_blob = np.ascontiguousarray(mask, dtype="<i8").tobytes()
        session.traffic.send_to_client(
            sum(len(blob) for blob in ct_blobs) + len(mask_blob),
            layer_name + "+mask",
        )
        session.traffic.end_round()
        return Message(
            "linear_ok",
            {"layer": layer_name, "mask_shape": list(mask.shape)},
            [*ct_blobs, mask_blob],
        )

    def _run_layer(
        self, entry: ModelEntry, layer, cts, galois_keys, fallback_keys=None,
        deadline=None,
    ):
        """Execute one layer, batched across clients when possible.

        Returns this request's ``(masked_cts, mask_view)``.
        """
        if self.max_batch <= 1:
            if self.metrics is not None:
                self.metrics.record_batch(1)
            return self._execute_layer(
                entry, layer, [cts], [galois_keys], [fallback_keys], deadline,
                [self.tracer.current_context()],
            )[0]
        # Keyed by entry *identity*: re-registering a model name creates a
        # fresh ModelEntry, and sessions opened before and after must not
        # share a batch (their plans and weights differ).  Sessions keep
        # executing against the entry they handshook with.
        key = (id(entry), layer.name)
        with self._lock:
            batcher = self._batchers.get(key)
            if batcher is None:
                self._prune_stale_batchers()
                batcher = _LayerBatcher(
                    lambda inputs, keys, fallback, batch_deadline, ctxs,
                    e=entry, l=layer: self._execute_layer(
                        e, l, inputs, keys, fallback, batch_deadline, ctxs
                    ),
                    self.max_batch,
                    self.batch_window_s,
                    metrics=self.metrics,
                    tracer=self.tracer,
                )
                batcher.entry = entry
                self._batchers[key] = batcher
        return batcher.submit(cts, galois_keys, fallback_keys, deadline)

    def _prune_stale_batchers(self) -> None:
        """Drop idle batchers for replaced model entries (holds self._lock)."""
        current = {id(e) for e in self.registry.entries()}
        stale = [
            key
            for key, batcher in self._batchers.items()
            if key[0] not in current and not batcher._pending
        ]
        for key in stale:
            del self._batchers[key]

    def _execute_layer(
        self, entry: ModelEntry, layer, batch_inputs, batch_keys,
        batch_fallback=None, deadline=None, trace_ctxs=None,
    ):
        """One stacked plan execution + blinding for B pending requests.

        A backend failure degrades to the in-process executor (when
        ``fallback_local`` and the raw Galois keys are at hand) instead
        of failing every session in the batch: plan execution is
        deterministic, so the local replay is bit-identical to what the
        backend would have produced.
        """
        ctxs = list(trace_ctxs or [])
        ctxs += [None] * (len(batch_inputs) - len(ctxs))
        traced = self.tracer.enabled and any(ctx is not None for ctx in ctxs)
        exec_spans = []
        before = None
        if traced:
            exec_spans = [
                self.tracer.begin(
                    "execute", ctx, layer=layer.name, batch=len(batch_inputs)
                )
                for ctx in ctxs
            ]
            before = GLOBAL_COUNTERS.snapshot()
        try:
            outputs = self.executor.execute(
                entry, layer, batch_inputs, batch_keys, deadline=deadline,
                trace=[span.context for span in exec_spans] if traced else None,
            )
        except ExecutionBackendError as exc:
            with self._stats_lock:
                self.backend_failures += 1
            fallback = batch_fallback or []
            if (
                not self.fallback_local
                or self.executor is self._local
                or len(fallback) != len(batch_inputs)
                or any(keys is None for keys in fallback)
            ):
                for span in exec_spans:
                    span.set(error=type(exc).__name__).finish()
                raise
            logger.warning(
                "execution backend failed for layer %r (%s); degrading "
                "this call to the in-process executor", layer.name, exc,
            )
            for span in exec_spans:
                span.set(degraded=True)
            outputs = self._local.execute(entry, layer, batch_inputs, fallback)
            with self._stats_lock:
                self.degraded_calls += 1
        if traced:
            # The batch's HE-op delta, attached to every member's execute
            # span (the work is shared; per-request splits live on the
            # shard-task / worker spans underneath when sharded).
            delta = GLOBAL_COUNTERS.diff(before)
            ops = {f: getattr(delta, f) for f in HE_OP_FIELDS}
            for span in exec_spans:
                span.set(he_ops=ops).finish()
        # One blinding pass over every output of the whole batch: the mask
        # encode + eval-domain lift run as a single (k, B*co, n) call.
        flat = [ct for request_cts in outputs for ct in request_cts]
        blind_spans = [
            self.tracer.begin("blind", ctx, rows=len(flat)) for ctx in ctxs
        ] if traced else []
        with self._mask_lock:
            masked_flat, mask_rows = blind_ciphertext_rows(
                entry.scheme, self._rng, flat
            )
        for span in blind_spans:
            span.finish()
        results = []
        offset = 0
        for request_cts in outputs:
            count = len(request_cts)
            results.append(
                self._mask_view(
                    entry,
                    layer,
                    masked_flat[offset : offset + count],
                    mask_rows[offset : offset + count],
                )
            )
            offset += count
        return results

    def _mask_view(self, entry: ModelEntry, layer, masked_cts, mask_rows):
        """Pair one request's masked outputs with the mask block it decrypts."""
        if isinstance(layer, ConvLayer):
            plan = entry.plans[layer.name]
            w = layer.w + 2 * layer.padding
            dense_w = w - layer.fw + 1
            mask = np.stack(
                [
                    unpack_image(row, plan.grid_w)[:dense_w, :dense_w]
                    for row in mask_rows
                ]
            )
        else:
            mask = mask_rows[0, : layer.no]
        return masked_cts, mask
