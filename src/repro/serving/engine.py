"""The serving engine: sessions, per-layer cross-client batching, blinding.

The cloud side of the wire protocol.  A :class:`ServingEngine` owns a
:class:`~repro.serving.registry.ModelRegistry` and processes
:class:`~repro.serving.wire.Message` requests from any number of
transports/worker threads:

``hello``
    Parameter handshake.  The client's parameter description must match
    the model's exactly (plans and mask encodings are parameter-bound);
    a mismatch is rejected with a reason instead of producing garbage
    ciphertexts later.  The reply carries the model's rotation-step set
    so the client generates exactly the Galois keys the compiled plans
    need.
``galois_keys``
    One-time per-session key upload (the Gazelle setup transmission).
``linear``
    One protocol round: the client's freshly encrypted activations in,
    the blinded layer outputs plus the dense mask block out.

Requests for the same ``(model, layer)`` that are pending concurrently
are merged by a :class:`_LayerBatcher` into a single
:meth:`~repro.scheduling.plan.ConvPlan.execute_batch` call, so the HE
work of ``B`` clients rides the batched ``(k, B, n)`` NTT path of
:class:`~repro.bfv.ntt_batch.RnsNttEngine` -- the serving-side analogue
of the paper's on-chip batching discipline.  Each client still key-
switches under its own Galois keys and is blinded with its own mask;
outputs are bit-identical to serial execution.

Per-session traffic is tallied with
:class:`~repro.protocol.messages.TrafficLog` (blob bytes, per-layer
labels, round counts), matching the accounting of the in-process
:class:`~repro.protocol.gazelle.GazelleProtocol`.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..bfv.serialize import deserialize_ciphertext, deserialize_galois_keys, serialize_ciphertext
from ..nn.layers import ConvLayer
from ..protocol.gazelle import blind_ciphertext_rows
from ..protocol.messages import TrafficLog
from ..scheduling.layouts import unpack_image
from .registry import ModelEntry, ModelRegistry
from .wire import Message, error_message

logger = logging.getLogger(__name__)


@dataclass
class _Session:
    """Per-client serving state: model binding, keys, traffic tally.

    ``galois_keys`` holds whatever the engine's execution backend
    returned from ``prepare_keys`` -- the deserialized
    :class:`~repro.bfv.keys.GaloisKeys` for in-process execution, or an
    opaque per-session handle for remote/sharded backends.
    ``fallback_keys`` always holds the deserialized keys themselves, so
    the engine can degrade a layer call to its in-process
    :class:`LocalExecutor` when the backend fails (remote handles are
    opaque and useless to the local path).
    """

    session_id: str
    entry: ModelEntry
    galois_keys: object | None = None
    fallback_keys: object | None = None
    traffic: TrafficLog = field(default_factory=TrafficLog)


class ExecutionBackendError(RuntimeError):
    """A pluggable execution backend failed to run a layer.

    Raised by executors (e.g. the sharded pool) for backend-level
    failures -- a dead worker, an IPC timeout, a model missing from the
    workers' artifact set.  The engine converts it into a protocol
    ``error`` reply instead of letting it tear down the transport.
    """


class LocalExecutor:
    """The default execution backend: run compiled plans in this process.

    Executors are the engine's seam for *where* plan math runs.  The
    contract (all three methods):

    ``prepare_keys(entry, key_id, blob, keys)``
        Called once per session after the engine validated the uploaded
        Galois keys; returns the object stored as the session's key
        handle and later passed back to ``execute``.
    ``release_keys(key_id)``
        The session closed or was evicted; free anything held for it.
    ``execute(entry, layer, batch_inputs, batch_handles, deadline=None)``
        Run one (possibly cross-client batched) layer call.  Returns one
        ``list[Ciphertext]`` per request -- ``co`` ciphertexts for a
        convolution, one for an FC layer -- bit-identical to
        ``plan.execute`` under each request's own keys.  ``deadline`` is
        an absolute ``time.monotonic()`` instant (or ``None``); remote
        backends enforce it, the in-process path ignores it (a started
        plan execution is never abandoned half-way).
    """

    def prepare_keys(self, entry, key_id, blob, keys):
        return keys

    def release_keys(self, key_id):
        pass

    def execute(
        self, entry: ModelEntry, layer, batch_inputs, batch_handles,
        deadline=None,
    ):
        plan = entry.plans[layer.name]
        if isinstance(layer, ConvLayer):
            return plan.execute_batch(batch_inputs, batch_handles)
        return [
            [ct]
            for ct in plan.execute_batch(
                [cts[0] for cts in batch_inputs], batch_handles
            )
        ]


class _BatchItem:
    """One pending layer request inside a :class:`_LayerBatcher`."""

    __slots__ = ("cts", "keys", "fallback_keys", "deadline", "event", "output",
                 "error")

    def __init__(self, cts, keys, fallback_keys=None, deadline=None):
        self.cts = cts
        self.keys = keys
        self.fallback_keys = fallback_keys
        self.deadline = deadline
        self.event = threading.Event()
        self.output = None
        self.error: BaseException | None = None


class _LayerBatcher:
    """Merge concurrently pending requests for one (model, layer) pair.

    The first request of a generation becomes the *leader*: it collects
    followers until ``max_batch`` are pending, the ``window_s`` deadline
    passes, or no new request has arrived for ``idle_gap_s`` (the burst
    is over -- waiting longer would be pure idle time), then executes the
    whole batch in one ``execute_batch`` call and distributes per-request
    outputs.  Followers block on their item's event.  A request arriving
    while a batch executes simply opens the next generation, so the
    engine never stalls behind a running batch.
    """

    def __init__(
        self, execute, max_batch: int, window_s: float, idle_gap_s: float = 0.005
    ):
        self._execute = execute
        self.max_batch = max(1, int(max_batch))
        self.window_s = window_s
        self.idle_gap_s = idle_gap_s
        #: The ModelEntry this batcher executes against (set by the engine;
        #: used to prune batchers of replaced models).
        self.entry = None
        self._cond = threading.Condition()
        self._pending: list[_BatchItem] = []

    def submit(self, cts, keys, fallback_keys=None, deadline=None):
        item = _BatchItem(cts, keys, fallback_keys, deadline)
        with self._cond:
            self._pending.append(item)
            leader = len(self._pending) == 1
            if len(self._pending) >= self.max_batch:
                self._cond.notify_all()
        if leader:
            deadline = time.monotonic() + self.window_s
            with self._cond:
                last_size = len(self._pending)
                last_growth = time.monotonic()
                while len(self._pending) < self.max_batch:
                    now = time.monotonic()
                    quiet_for = now - last_growth
                    if now >= deadline or quiet_for >= self.idle_gap_s:
                        break
                    self._cond.wait(
                        min(deadline - now, self.idle_gap_s - quiet_for)
                    )
                    if len(self._pending) > last_size:
                        last_size = len(self._pending)
                        last_growth = time.monotonic()
                batch, self._pending = self._pending, []
            self._run(batch)
        item.event.wait()
        if item.error is not None:
            raise item.error
        return item.output

    def _run(self, batch: list[_BatchItem]) -> None:
        try:
            deadlines = [
                item.deadline for item in batch if item.deadline is not None
            ]
            outputs = self._execute(
                [item.cts for item in batch],
                [item.keys for item in batch],
                [item.fallback_keys for item in batch],
                min(deadlines) if deadlines else None,
            )
            for item, output in zip(batch, outputs):
                item.output = output
        except BaseException as exc:  # surface to every waiter, don't hang
            for item in batch:
                item.error = exc
        finally:
            for item in batch:
                item.event.set()


class ServingEngine:
    """Multi-client private-inference server over the repro wire format."""

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: int = 8,
        batch_window_s: float = 0.02,
        max_sessions: int = 256,
        seed: int | None = None,
        executor=None,
        request_deadline_s: float | None = None,
        fallback_local: bool = True,
    ):
        self.registry = registry
        #: Where plan math runs: in-process by default, or a pluggable
        #: backend such as :class:`~repro.serving.shards.ShardExecutor`
        #: (see :class:`LocalExecutor` for the contract).
        self.executor = executor if executor is not None else LocalExecutor()
        self.max_batch = max(1, int(max_batch))
        self.batch_window_s = batch_window_s
        #: Soft per-request deadline (seconds per linear round), or
        #: ``None``.  Propagated into the backend as an absolute
        #: monotonic instant; a backend that cannot meet it fails the
        #: call and the engine degrades to the local executor.
        self.request_deadline_s = (
            None if not request_deadline_s else float(request_deadline_s)
        )
        #: When the execution backend fails a layer call
        #: (:class:`ExecutionBackendError`: pool below quorum, task out
        #: of attempts, deadline missed), re-run it on the in-process
        #: :class:`LocalExecutor` instead of failing the session.
        self.fallback_local = bool(fallback_local)
        self._local = (
            self.executor
            if isinstance(self.executor, LocalExecutor)
            else LocalExecutor()
        )
        self._stats_lock = threading.Lock()
        #: Layer calls served by the local fallback after a backend failure.
        self.degraded_calls = 0
        #: Backend failures observed (== degraded_calls unless fallback
        #: is off or the fallback itself failed).
        self.backend_failures = 0
        #: Session-table bound: clients that vanish without sending ``close``
        #: (crashes, dropped connections) must not leak their multi-MB Galois
        #: key sets forever, so the least-recently-used session is evicted
        #: once the table is full.  An evicted client's next request fails
        #: with "unknown session" and it simply reconnects.
        self.max_sessions = max(1, int(max_sessions))
        self._sessions: "OrderedDict[str, _Session]" = OrderedDict()
        self._batchers: dict[tuple[int, str], _LayerBatcher] = {}
        self._lock = threading.Lock()
        self._mask_lock = threading.Lock()
        # Blinding masks hide partial weight sums from *remote* clients, so
        # the default is OS entropy; pass a seed only for reproducible tests
        # (predictable masks let a client unmask the withheld slots).
        self._rng = np.random.default_rng(seed)
        self._next_session = 0

    # -- dispatch -----------------------------------------------------------

    def handle(self, request: Message) -> Message:
        """Process one request message; always returns a reply message."""
        handler = {
            "hello": self._handle_hello,
            "galois_keys": self._handle_galois_keys,
            "linear": self._handle_linear,
            "close": self._handle_close,
        }.get(request.kind)
        if handler is None:
            return error_message(f"unknown request kind {request.kind!r}")
        try:
            return handler(request)
        except (KeyError, ValueError, TypeError, ExecutionBackendError) as exc:
            return error_message(str(exc))

    def session_traffic(self, session_id: str) -> TrafficLog:
        """The per-session byte/round tally (server-side view)."""
        return self._session(session_id).traffic

    def _session(self, session_id: str) -> _Session:
        with self._lock:
            try:
                session = self._sessions[session_id]
            except KeyError:
                raise KeyError(f"unknown session {session_id!r}") from None
            self._sessions.move_to_end(session_id)
            return session

    # -- handshake ----------------------------------------------------------

    def _handle_hello(self, request: Message) -> Message:
        model_name, client_params = request.require("model", "params")
        entry = self.registry.get(model_name)
        reason = self.registry.params_compatible(entry, client_params)
        if reason is not None:
            return error_message(reason)
        with self._lock:
            while len(self._sessions) >= self.max_sessions:
                evicted_id, _evicted = self._sessions.popitem(last=False)
                self.executor.release_keys(evicted_id)
            session_id = f"s{self._next_session}"
            self._next_session += 1
            self._sessions[session_id] = _Session(session_id, entry)
        meta = {"session": session_id, **entry.handshake_meta()}
        return Message("hello_ok", meta)

    def _handle_galois_keys(self, request: Message) -> Message:
        session = self._session(request.require("session"))
        if len(request.blobs) != 1:
            return error_message("galois_keys expects exactly one key blob")
        blob = request.blobs[0]
        keys = deserialize_galois_keys(blob, session.entry.params)
        missing = [
            step
            for step in session.entry.rotation_steps
            if session.entry.scheme.galois_elt_for_step(step) not in keys
        ]
        if missing:
            return error_message(
                f"uploaded Galois keys missing rotation step(s) {missing}"
            )
        session.galois_keys = self.executor.prepare_keys(
            session.entry, session.session_id, blob, keys
        )
        session.fallback_keys = keys
        session.traffic.send_to_cloud(len(blob), "galois_keys")
        return Message("keys_ok", {"session": session.session_id})

    def _handle_close(self, request: Message) -> Message:
        session_id = request.require("session")
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is not None:
            self.executor.release_keys(session_id)
        return Message("close_ok", {"session": session_id})

    # -- linear rounds -------------------------------------------------------

    def _handle_linear(self, request: Message) -> Message:
        session_id, layer_name = request.require("session", "layer")
        session = self._session(session_id)
        if session.galois_keys is None:
            return error_message(
                f"session {session_id!r} has not uploaded Galois keys"
            )
        entry = session.entry
        layer = entry.layer(layer_name)
        plan = entry.plans[layer_name]
        expected = plan.ci if isinstance(layer, ConvLayer) else 1
        if len(request.blobs) != expected:
            return error_message(
                f"layer {layer_name!r} expects {expected} ciphertext(s), "
                f"got {len(request.blobs)}"
            )
        cts = [deserialize_ciphertext(blob, entry.params) for blob in request.blobs]
        session.traffic.send_to_cloud(
            sum(len(blob) for blob in request.blobs), layer_name
        )
        deadline = (
            time.monotonic() + self.request_deadline_s
            if self.request_deadline_s is not None
            else None
        )
        masked_cts, mask = self._run_layer(
            entry, layer, cts, session.galois_keys, session.fallback_keys,
            deadline,
        )
        ct_blobs = [serialize_ciphertext(ct, entry.params) for ct in masked_cts]
        mask_blob = np.ascontiguousarray(mask, dtype="<i8").tobytes()
        session.traffic.send_to_client(
            sum(len(blob) for blob in ct_blobs) + len(mask_blob),
            layer_name + "+mask",
        )
        session.traffic.end_round()
        return Message(
            "linear_ok",
            {"layer": layer_name, "mask_shape": list(mask.shape)},
            [*ct_blobs, mask_blob],
        )

    def _run_layer(
        self, entry: ModelEntry, layer, cts, galois_keys, fallback_keys=None,
        deadline=None,
    ):
        """Execute one layer, batched across clients when possible.

        Returns this request's ``(masked_cts, mask_view)``.
        """
        if self.max_batch <= 1:
            return self._execute_layer(
                entry, layer, [cts], [galois_keys], [fallback_keys], deadline
            )[0]
        # Keyed by entry *identity*: re-registering a model name creates a
        # fresh ModelEntry, and sessions opened before and after must not
        # share a batch (their plans and weights differ).  Sessions keep
        # executing against the entry they handshook with.
        key = (id(entry), layer.name)
        with self._lock:
            batcher = self._batchers.get(key)
            if batcher is None:
                self._prune_stale_batchers()
                batcher = _LayerBatcher(
                    lambda inputs, keys, fallback, batch_deadline,
                    e=entry, l=layer: self._execute_layer(
                        e, l, inputs, keys, fallback, batch_deadline
                    ),
                    self.max_batch,
                    self.batch_window_s,
                )
                batcher.entry = entry
                self._batchers[key] = batcher
        return batcher.submit(cts, galois_keys, fallback_keys, deadline)

    def _prune_stale_batchers(self) -> None:
        """Drop idle batchers for replaced model entries (holds self._lock)."""
        current = {id(e) for e in self.registry.entries()}
        stale = [
            key
            for key, batcher in self._batchers.items()
            if key[0] not in current and not batcher._pending
        ]
        for key in stale:
            del self._batchers[key]

    def _execute_layer(
        self, entry: ModelEntry, layer, batch_inputs, batch_keys,
        batch_fallback=None, deadline=None,
    ):
        """One stacked plan execution + blinding for B pending requests.

        A backend failure degrades to the in-process executor (when
        ``fallback_local`` and the raw Galois keys are at hand) instead
        of failing every session in the batch: plan execution is
        deterministic, so the local replay is bit-identical to what the
        backend would have produced.
        """
        try:
            outputs = self.executor.execute(
                entry, layer, batch_inputs, batch_keys, deadline=deadline
            )
        except ExecutionBackendError as exc:
            with self._stats_lock:
                self.backend_failures += 1
            fallback = batch_fallback or []
            if (
                not self.fallback_local
                or self.executor is self._local
                or len(fallback) != len(batch_inputs)
                or any(keys is None for keys in fallback)
            ):
                raise
            logger.warning(
                "execution backend failed for layer %r (%s); degrading "
                "this call to the in-process executor", layer.name, exc,
            )
            outputs = self._local.execute(entry, layer, batch_inputs, fallback)
            with self._stats_lock:
                self.degraded_calls += 1
        # One blinding pass over every output of the whole batch: the mask
        # encode + eval-domain lift run as a single (k, B*co, n) call.
        flat = [ct for request_cts in outputs for ct in request_cts]
        with self._mask_lock:
            masked_flat, mask_rows = blind_ciphertext_rows(
                entry.scheme, self._rng, flat
            )
        results = []
        offset = 0
        for request_cts in outputs:
            count = len(request_cts)
            results.append(
                self._mask_view(
                    entry,
                    layer,
                    masked_flat[offset : offset + count],
                    mask_rows[offset : offset + count],
                )
            )
            offset += count
        return results

    def _mask_view(self, entry: ModelEntry, layer, masked_cts, mask_rows):
        """Pair one request's masked outputs with the mask block it decrypts."""
        if isinstance(layer, ConvLayer):
            plan = entry.plans[layer.name]
            w = layer.w + 2 * layer.padding
            dense_w = w - layer.fw + 1
            mask = np.stack(
                [
                    unpack_image(row, plan.grid_w)[:dense_w, :dense_w]
                    for row in mask_rows
                ]
            )
        else:
            mask = mask_rows[0, : layer.no]
        return masked_cts, mask
