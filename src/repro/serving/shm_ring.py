"""Zero-copy shared-memory ring for shard-channel ciphertext slabs.

The queue-backed shard channel pickles every ``(k, B, n)`` int64
residue stack through a ``multiprocessing.Queue`` pair -- on the demo
deployment that serialization dominates the sharded path's cost
(``BENCH_sharding.json``).  This module removes the bulk payload from
the pickled path: each worker channel gets a :class:`ShmRing`, a
fixed-capacity single-producer/single-consumer byte ring over
``multiprocessing.shared_memory``, and ciphertext slabs are written
into it as raw page-aligned bytes.  Only a small control frame (the
usual :mod:`repro.serving.wire` message, its blobs replaced by a
:data:`~repro.serving.wire.SLAB_META_KEY` descriptor carrying the ring
offset, byte count, and CRC) still crosses the queue.

Ring layout (one shared-memory segment)::

    offset 0      u64 write_pos   free-running byte counter (producer-owned)
    offset 64     u64 read_pos    free-running byte counter (consumer-owned)
    offset 4096   data area       ``capacity`` bytes, ring-addressed

Records in the data area are 8-byte aligned so int64 residue slabs land
aligned, and each is sealed twice::

    u32 magic "RGR1" | u32 length | u32 crc32(payload) | u32 crc32(header)
    payload ... | zero padding to a multiple of 8

``write_pos``/``read_pos`` are monotonic byte counters (``index = pos %
capacity``), so *full* (``write - read + record > capacity``) and
*empty* (``write == read``) are unambiguous even across wraparound.
The producer publishes a record by advancing ``write_pos`` only after
the full record is written; the consumer advances ``read_pos`` only
after the record validated.  A consumer that observes a record whose
header CRC, magic, length, or payload CRC does not hold raises
:class:`RingCorruption` *without* advancing -- a half-written record
left by a SIGKILLed producer can therefore never be mis-read as data,
which is what lets the shard supervisor treat rings like queues: a dead
incarnation's rings are discarded wholesale and fresh ones are built
for the respawn.

Fairness/robustness properties (pinned by ``tests/test_shm_ring.py``):
FIFO order is exact, wraparound is invisible to payload content,
full/empty boundaries block or raise (:class:`RingFull` /
:class:`RingEmpty`) but never tear, and every single-byte corruption of
a sealed record is rejected.
"""

from __future__ import annotations

import struct
import time
import zlib
from multiprocessing import shared_memory

from .wire import (
    SLAB_META_KEY,
    Message,
    decode_message,
    encode_message,
    slab_descriptor,
    split_slab,
)

#: The data area starts one page in, so int64 slabs are page-disjoint
#: from the position words (and never share a cache line with them).
DATA_OFFSET = 4096

_WRITE_POS = 0
_READ_POS = 64
_POS = struct.Struct("<Q")
#: Record header: magic, payload length, payload CRC-32, header CRC-32
#: (over the first three fields).
_RECORD = struct.Struct("<IIII")
_MAGIC = 0x31524752  # b"RGR1", little-endian
_POLL_S = 0.0002


class RingError(RuntimeError):
    """Base class for ring-protocol failures."""


class RingFull(RingError):
    """No room for the record within the push timeout."""


class RingEmpty(RingError):
    """No published record within the pop timeout."""


class RingCorruption(RingError):
    """A record failed validation (header CRC, magic, length, or payload
    CRC); ``read_pos`` is left untouched so the damage is inspectable."""


class SlabTooLarge(RingError):
    """The payload cannot fit the ring even when empty."""


def _align8(count: int) -> int:
    return (count + 7) & ~7


class ShmRing:
    """A CRC-sealed SPSC byte ring over one shared-memory segment.

    One process pushes, one process pops (the shard fabric gives every
    worker channel its own pair of rings, so the constraint is free).
    ``push``/``pop`` block up to ``timeout_s`` (``None`` = forever,
    ``0`` = non-blocking) by polling -- the shard channels never
    actually wait on the ring, because the control frame on the mp queue
    is the wakeup: the slab is always pushed before the frame is sent.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self._shm = shm
        self._owner = owner
        self.capacity = shm.size - DATA_OFFSET

    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        """Allocate a fresh ring with at least ``capacity`` data bytes."""
        capacity = max(int(capacity), DATA_OFFSET)
        capacity = (capacity + DATA_OFFSET - 1) // DATA_OFFSET * DATA_OFFSET
        shm = shared_memory.SharedMemory(
            create=True, size=DATA_OFFSET + capacity
        )
        # Fresh segments are zero-filled, so both positions start at 0.
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Map an existing ring by name (spawn-context workers)."""
        return cls(shared_memory.SharedMemory(name=name), owner=False)

    def __reduce__(self):
        # Spawn-context Process args are pickled; the child re-attaches
        # by name (fork-context children just inherit the mapping).
        return (ShmRing.attach, (self.name,))

    @property
    def name(self) -> str:
        return self._shm.name

    # -- position words ------------------------------------------------------

    def _load(self, offset: int) -> int:
        return _POS.unpack_from(self._shm.buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _POS.pack_into(self._shm.buf, offset, value)

    def used_bytes(self) -> int:
        return self._load(_WRITE_POS) - self._load(_READ_POS)

    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes()

    # -- ring-addressed byte I/O --------------------------------------------

    def _write(self, index: int, data: bytes) -> None:
        buf = self._shm.buf
        end = index + len(data)
        if end <= self.capacity:
            buf[DATA_OFFSET + index : DATA_OFFSET + end] = data
        else:
            first = self.capacity - index
            buf[DATA_OFFSET + index : DATA_OFFSET + self.capacity] = data[:first]
            buf[DATA_OFFSET : DATA_OFFSET + end - self.capacity] = data[first:]

    def _read(self, index: int, count: int) -> bytes:
        buf = self._shm.buf
        end = index + count
        if end <= self.capacity:
            return bytes(buf[DATA_OFFSET + index : DATA_OFFSET + end])
        first = self.capacity - index
        return bytes(buf[DATA_OFFSET + index : DATA_OFFSET + self.capacity]) + bytes(
            buf[DATA_OFFSET : DATA_OFFSET + end - self.capacity]
        )

    # -- the protocol --------------------------------------------------------

    def record_bytes(self, payload_len: int) -> int:
        """Ring bytes one record of ``payload_len`` payload bytes occupies."""
        return _RECORD.size + _align8(int(payload_len))

    def push(self, payload: bytes, timeout_s: float | None = None) -> int:
        """Seal and publish one record; returns its data-area offset.

        Raises :class:`SlabTooLarge` if the payload can never fit and
        :class:`RingFull` if space does not free up within ``timeout_s``.
        """
        record = self.record_bytes(len(payload))
        if record > self.capacity:
            raise SlabTooLarge(
                f"record of {record} bytes exceeds ring capacity "
                f"{self.capacity}"
            )
        deadline = (
            None if timeout_s is None else time.monotonic() + float(timeout_s)
        )
        while True:
            write = self._load(_WRITE_POS)
            read = self._load(_READ_POS)
            if self.capacity - (write - read) >= record:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise RingFull(
                    f"no room for {record} bytes "
                    f"({self.capacity - (write - read)} free)"
                )
            time.sleep(_POLL_S)
        offset = write % self.capacity
        payload_crc = zlib.crc32(payload) & 0xFFFFFFFF
        head = struct.pack("<III", _MAGIC, len(payload), payload_crc)
        header = head + struct.pack("<I", zlib.crc32(head) & 0xFFFFFFFF)
        self._write(offset, header)
        self._write((offset + _RECORD.size) % self.capacity, payload)
        # Publish only after the whole record is in place: a consumer
        # never sees a partially written record as available bytes.
        self._store(_WRITE_POS, write + record)
        return offset

    def pop(self, timeout_s: float | None = None) -> tuple[int, bytes]:
        """Validate and consume the oldest record -> ``(offset, payload)``.

        Raises :class:`RingEmpty` on timeout and :class:`RingCorruption`
        (without advancing ``read_pos``) when the record fails any check.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + float(timeout_s)
        )
        while True:
            write = self._load(_WRITE_POS)
            read = self._load(_READ_POS)
            if write > read:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise RingEmpty("no published record")
            time.sleep(_POLL_S)
        offset = read % self.capacity
        header = self._read(offset, _RECORD.size)
        magic, length, payload_crc, header_crc = _RECORD.unpack(header)
        if (zlib.crc32(header[:12]) & 0xFFFFFFFF) != header_crc:
            raise RingCorruption("record header CRC mismatch")
        if magic != _MAGIC:
            raise RingCorruption(f"bad record magic 0x{magic:08x}")
        record = self.record_bytes(length)
        if length > self.capacity - _RECORD.size or write - read < record:
            raise RingCorruption(
                f"record length {length} exceeds published bytes"
            )
        payload = self._read((offset + _RECORD.size) % self.capacity, length)
        if (zlib.crc32(payload) & 0xFFFFFFFF) != payload_crc:
            raise RingCorruption("record payload CRC mismatch")
        self._store(_READ_POS, read + record)
        return offset, payload

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


def retire_ring(ring: ShmRing | None) -> None:
    """Best-effort close + unlink for a ring that may still have readers.

    A superseded incarnation's collector can race this with a last pop;
    ``mmap`` then refuses to close while buffer exports exist
    (``BufferError``).  The name is unlinked regardless, so the segment
    is freed once every mapping drops.
    """
    if ring is None:
        return
    try:
        ring.unlink()
    except OSError:  # pragma: no cover - defensive
        pass
    try:
        ring.close()
    except (BufferError, OSError):  # pragma: no cover - racing reader
        pass


def flip_ring_byte(ring: ShmRing, data_index: int, xor: int = 0x40) -> None:
    """Fault-injection hook: XOR one byte of the ring's data area.

    The chaos and property suites use this to model a torn or corrupted
    slab; any nonzero ``xor`` inside a sealed record must surface as
    :class:`RingCorruption` on the next :meth:`ShmRing.pop`.
    """
    index = DATA_OFFSET + (int(data_index) % ring.capacity)
    ring._shm.buf[index] ^= xor & 0xFF


# -- frame packing ------------------------------------------------------------


def pack_into_ring(
    message: Message, ring: ShmRing | None, timeout_s: float | None = 0.2
) -> tuple[bytes, int]:
    """Encode ``message`` for a shm channel -> ``(control frame, slab bytes)``.

    The blobs are concatenated into one slab pushed onto ``ring``; the
    returned control frame carries only the meta plus a
    :func:`~repro.serving.wire.slab_descriptor`.  When the ring is
    absent, full, or too small for the slab, the message is encoded
    in-band unchanged (slab bytes 0) -- the consumer handles both
    shapes, so an oversized layer degrades to the queue path instead of
    failing.
    """
    if ring is None or not message.blobs:
        return encode_message(message), 0
    slab = b"".join(message.blobs)
    try:
        offset = ring.push(slab, timeout_s=timeout_s)
    except (RingFull, SlabTooLarge):
        return encode_message(message), 0
    meta = dict(message.meta)
    meta[SLAB_META_KEY] = slab_descriptor(
        offset, slab, [len(blob) for blob in message.blobs]
    )
    return encode_message(Message(message.kind, meta, [])), len(slab)


def unpack_from_ring(
    payload: bytes, ring: ShmRing | None, timeout_s: float | None = 5.0
) -> tuple[Message, int]:
    """Decode a control frame, resolving its slab -> ``(message, slab bytes)``.

    A frame without a slab descriptor decodes as-is (slab bytes 0).
    Otherwise the next ring record is popped and cross-checked against
    the descriptor (offset, byte count, CRC, blob lengths); any mismatch
    raises :class:`RingCorruption`.
    """
    message = decode_message(payload)
    descriptor = message.meta.pop(SLAB_META_KEY, None)
    if descriptor is None:
        return message, 0
    if ring is None:
        raise RingCorruption(
            "frame references a shared-memory slab but the channel has no ring"
        )
    offset, slab = ring.pop(timeout_s=timeout_s)
    try:
        message.blobs = split_slab(descriptor, offset, slab)
    except ValueError as exc:
        raise RingCorruption(str(exc)) from exc
    return message, len(slab)
