"""The asyncio serving gateway: an event-driven front end for the engine.

The threaded :class:`~repro.serving.transport.SocketServer` dedicates
one pooled thread to each connection for the connection's lifetime, so a
client's *think-time* -- decrypting the blinded layer outputs, running
the garbled-circuit stage, re-encrypting the next activations -- leaves
its thread parked in ``recv``.  At high client counts that both caps how
many clients can connect (``workers`` bounds connections, not load) and
starves the cross-client batcher: threads arrive at the engine staggered
by think-time instead of together.

:class:`AsyncGateway` inverts the coupling.  All connections multiplex
onto one ``asyncio`` event loop (running in a background thread, so the
gateway presents the same synchronous ``start()``/``stop()`` surface as
``SocketServer``); a thread from the small executor pool is occupied
only while the engine is actually computing a reply
(``run_in_executor``).  Concurrent requests therefore reach
:class:`~repro.serving.engine.ServingEngine` together and meet in its
``_LayerBatcher`` -- the event-driven batch window (flush on full batch,
the ``batch_window_s`` timer, or an idle gap) sees full same-layer
stacks instead of think-time-staggered stragglers.

Everything below the front end is untouched: same wire frames, same
engine, same executors -- which is what lets the differential
conformance suite pin the gateway to bit-identical logits and HE op
counters against every other execution path.

The gateway speaks two protocols on one port, distinguished by the
first four bytes of a connection: the native length-prefixed wire
protocol, and a one-shot ``GET /metrics`` HTTP scrape (``b"GET "`` can
never open a wire frame -- read as a length prefix it decodes to ~0.5
GiB, far past any sane frame cap).  Backpressure is layered: the engine's
admission controller enforces tenant quotas and queue bounds, and the
gateway itself sheds ``linear`` load in the event loop -- before
spending an executor thread -- once ``queue_limit`` rounds are in
flight.
"""

from __future__ import annotations

import asyncio
import logging
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from .admission import busy_message
from .metrics import render_http
from .tracing import NULL_TRACER
from .wire import (
    MAX_FRAME_BYTES,
    TRACE_META_KEY,
    Message,
    decode_message,
    encode_message,
    error_message,
)

logger = logging.getLogger(__name__)

_LEN = struct.Struct("<I")

#: Request kinds the gateway may refuse with ``busy`` under load.  Only
#: the HE-heavy data-plane round is sheddable; control-plane kinds
#: (``hello``, ``galois_keys``, ``close``, ``metrics``, ``admin``) always
#: get through -- an operator must be able to reach (and drain, and
#: upgrade) a server precisely when it is saturated.
SHEDDABLE_KINDS = frozenset({"linear"})


class AsyncGateway:
    """Event-driven TCP front end for a :class:`ServingEngine`.

    Mirrors ``SocketServer``'s synchronous surface (``start``, ``stop``,
    ``host``/``port``, context manager) so callers -- CLI, benchmarks,
    the conformance suite -- treat the two front ends interchangeably.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_threads: int = 16,
        queue_limit: int | None = None,
        max_frame_bytes: int | None = None,
        metrics=None,
        busy_retry_after_s: float = 0.05,
        drain_timeout_s: float = 30.0,
        session_sweep_interval_s: float = 1.0,
    ):
        self.engine = engine
        self.host = host
        self.port = port  # rewritten to the bound port after start()
        self.executor_threads = max(1, int(executor_threads))
        #: In-flight bound for ``linear`` rounds; beyond it the gateway
        #: replies ``busy`` from the event loop.  ``0`` disables.
        self.queue_limit = (
            2 * self.executor_threads if queue_limit is None else int(queue_limit)
        )
        self.max_frame_bytes = (
            MAX_FRAME_BYTES if max_frame_bytes is None else int(max_frame_bytes)
        )
        self.metrics = metrics if metrics is not None else getattr(engine, "metrics", None)
        #: Request tracer, shared with the engine: the gateway owns each
        #: request's root span, the engine hangs its ``handle`` span off it.
        self.tracer = getattr(engine, "tracer", None) or NULL_TRACER
        self.busy_retry_after_s = float(busy_retry_after_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self.session_sweep_interval_s = float(session_sweep_interval_s)
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_threads, thread_name_prefix="repro-gateway"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self._sweep_task: asyncio.Task | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._stopping = False
        self._stopped = False
        # Loop-confined state: mutated only on the event-loop thread, so
        # no lock -- gauges read racily (a stale int is fine for metrics).
        self._inflight = 0
        self._writers: set[asyncio.StreamWriter] = set()
        #: Linear rounds refused because ``queue_limit`` was reached.
        self.busy_rejections = 0
        if self.metrics is not None:
            self.metrics.add_gauge("gateway_queue_depth", lambda: self._inflight)
            self.metrics.add_gauge("gateway_connections", lambda: len(self._writers))
            self.metrics.add_gauge(
                "gateway_busy_rejections", lambda: self.busy_rejections
            )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AsyncGateway":
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-gateway-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():  # pragma: no cover - defensive
            raise RuntimeError("gateway event loop failed to start")
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._startup())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    async def _startup(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        if getattr(self.engine, "session_ttl_s", None) is not None:
            self._sweep_task = asyncio.get_running_loop().create_task(
                self._sweep_sessions()
            )

    async def _sweep_sessions(self) -> None:
        """Periodic idle-session TTL sweep (the engine's is lazy)."""
        interval = min(
            self.session_sweep_interval_s, float(self.engine.session_ttl_s)
        )
        while True:
            await asyncio.sleep(max(interval, 0.01))
            try:
                self.engine.evict_idle_sessions()
            except Exception:  # pragma: no cover - defensive
                logger.exception("idle-session sweep failed")

    def stop(self) -> None:
        """Stop accepting, drain in-flight requests, then tear down."""
        if self._thread is None or self._stopped:
            return
        self._stopped = True
        if self._startup_error is None and self._loop is not None:
            future = asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop)
            try:
                future.result(timeout=self.drain_timeout_s + 15)
            except Exception:  # pragma: no cover - defensive
                logger.exception("gateway shutdown raised")
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=15)
        self._executor.shutdown(wait=True, cancel_futures=True)

    async def _shutdown(self) -> None:
        self._stopping = True
        if self._sweep_task is not None:
            self._sweep_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drain: requests already dispatched to the executor get their
        # replies written before their connections are closed.  The
        # in-flight counter and the reply write happen in the same
        # scheduling slice (no await between them), so observing zero
        # here means every reply is at least in the transport buffer.
        deadline = time.monotonic() + self.drain_timeout_s
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            writer.close()

    def __enter__(self) -> "AsyncGateway":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while not self._stopping:
                try:
                    prefix = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return
                if prefix == b"GET ":
                    await self._serve_http(reader, writer)
                    return
                (length,) = _LEN.unpack(prefix)
                if length > self.max_frame_bytes:
                    # Oversized claim in the length prefix: drop the
                    # connection before a single body byte is buffered.
                    logger.warning(
                        "dropping connection claiming a %d-byte frame "
                        "(cap %d)", length, self.max_frame_bytes,
                    )
                    return
                try:
                    payload = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return
                reply = await self._dispatch(payload)
                writer.write(_LEN.pack(len(reply)) + reply)
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    return
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, payload: bytes) -> bytes:
        try:
            request = decode_message(payload)
        except ValueError as exc:
            return encode_message(error_message(f"bad frame: {exc}"))
        span = self.tracer.accept(
            "request", request.meta, kind=request.kind, frontend="async"
        )
        if (
            self.queue_limit
            and request.kind in SHEDDABLE_KINDS
            and self._inflight >= self.queue_limit
        ):
            # Load shedding in the event loop: the refusal costs no
            # executor thread and no engine work.
            self.busy_rejections += 1
            reply = busy_message(self.busy_retry_after_s, "gateway job queue full")
            if self.metrics is not None:
                self.metrics.record_request(request.kind, 0.0, reply.kind)
            span.set(outcome="busy").finish()
            if span.trace_id is not None:
                reply.meta.setdefault(
                    TRACE_META_KEY, {"trace_id": span.trace_id}
                )
            return encode_message(reply)
        self._inflight += 1
        try:
            reply = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._handle, request
            )
            span.set(outcome=reply.kind).finish()
            return encode_message(reply)
        finally:
            self._inflight -= 1

    def _handle(self, request: Message) -> Message:
        try:
            return self.engine.handle(request)
        except Exception as exc:  # keep the connection alive
            logger.exception("engine raised handling %r", request.kind)
            return error_message(f"internal error: {exc}")

    # -- the HTTP surface (/metrics, /healthz) -------------------------------

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One-shot HTTP GET on the wire port (``curl :port/metrics``).

        The ``b"GET "`` prefix was already consumed by the sniffer, so
        the stream resumes at the request target.  Routing (``/metrics``
        JSON, ``/metrics?format=prometheus``, ``/healthz``) is shared
        with the threaded front end via
        :func:`~repro.serving.metrics.render_http`.
        """
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            TimeoutError,
            ConnectionError,
            OSError,
        ):
            return
        target = head.split(b" ", 1)[0].decode("latin-1")
        status, content_type, body = render_http(target, self.engine, self.metrics)
        writer.write(
            (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass
