"""The client side of the serving protocol.

A :class:`ClientSession` owns everything the cloud must never see: the
secret key, the plaintext activations, and the unmasked layer outputs.
It drives one session against any :class:`~repro.serving.transport.
Transport`:

1. ``connect`` -- parameter handshake (the server validates the client's
   :func:`~repro.bfv.serialize.params_to_dict` against the model), then a
   one-time Galois-key upload covering exactly the rotation steps the
   server's compiled plans need.
2. ``infer`` -- per linear layer: pack + encrypt the activations, ship
   the ciphertexts, receive the blinded outputs plus the dense mask
   block, decrypt, and run the simulated garbled-circuit stage (unmask,
   truncate, ReLU/pooling) locally before the next round.

The per-layer math is shared with the in-process reference
(:mod:`repro.protocol.gazelle` helpers), so a loopback session returns
logits bit-identical to :meth:`GazelleProtocol.run
<repro.protocol.gazelle.GazelleProtocol.run>`.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass

import numpy as np

from ..bfv.noise import invariant_noise_budget
from ..bfv.params import BfvParameters
from ..bfv.scheme import BfvScheme
from ..bfv.serialize import (
    deserialize_ciphertext,
    params_to_dict,
    serialize_ciphertext,
    serialize_galois_keys,
)
from ..nn.layers import ActivationLayer, ConvLayer, FCLayer
from ..nn.models import Network
from ..protocol.garbled import GarbledEvaluator, GcCost
from ..protocol.gazelle import (
    decrypt_conv_outputs,
    gc_postprocess,
    pad_and_grid_conv_input,
)
from ..scheduling.fc import pack_fc_input
from ..scheduling.layouts import pack_image
from .transport import Transport
from .wire import TRACE_META_KEY, Message, ServingError, raise_on_error


@dataclass
class ServingResult:
    """Client-side outcome of one remote private inference."""

    logits: np.ndarray
    rounds: int
    gc_cost: GcCost
    #: Minimum invariant noise budget observed across received ciphertexts
    #: (``inf`` when ``track_noise`` is off -- measuring costs a decrypt).
    min_noise_budget: float
    #: Rounds this inference re-issued after a transport failure (0 on
    #: transports without retry support).  Replays are bit-identical, so
    #: a non-zero count changes nothing about the logits.
    transport_retries: int = 0
    #: Rounds re-issued after a server ``busy`` (backpressure) reply.
    #: Like transport replays, busy retries never change the logits.
    busy_retries: int = 0


class ClientSession:
    """One client's connection-scoped state and inference driver."""

    def __init__(
        self,
        network: Network,
        params: BfvParameters,
        transport: Transport,
        seed: int = 0,
        track_noise: bool = False,
        tenant: str = "default",
        busy_retry_limit: int = 64,
        trace_requests: bool = False,
    ):
        self.network = network
        self.params = params
        self.transport = transport
        self.track_noise = track_noise
        #: Tenant label sent in the handshake; the server's admission
        #: controller rate-limits per tenant.
        self.tenant = tenant
        #: Consecutive ``busy`` replies tolerated per round before giving up.
        self.busy_retry_limit = int(busy_retry_limit)
        #: Stamp a client-minted trace id on every request so server-side
        #: traces are correlatable with this session; ids the server
        #: echoes back collect in :attr:`trace_ids`.
        self.trace_requests = bool(trace_requests)
        #: Trace ids echoed in replies (in request order, one per round
        #: the server traced) -- feed them to the server's tracer /
        #: ``repro trace`` to pull this session's span trees.
        self.trace_ids: list[str] = []
        self.scheme = BfvScheme(params, seed=seed)
        self.secret, self.public = self.scheme.keygen()
        self.session_id: str | None = None
        self.rescale_bits: int = 0
        self._layer_meta: dict = {}
        self._busy_retries = 0

    # -- setup --------------------------------------------------------------

    def _send(self, message: Message) -> Message:
        """One transport round; stamps/collects trace context when enabled.

        ``setdefault`` keeps the id stable across busy/transport replays
        of the same round, so every attempt lands in one trace.
        """
        if self.trace_requests:
            message.meta.setdefault(
                TRACE_META_KEY, {"trace_id": uuid.uuid4().hex[:16]}
            )
        reply = self.transport.request(message)
        ctx = reply.meta.get(TRACE_META_KEY)
        if isinstance(ctx, dict) and ctx.get("trace_id"):
            self.trace_ids.append(str(ctx["trace_id"]))
        return reply

    def connect(self, model: str) -> None:
        """Handshake and Galois-key upload; raises ServingError on rejection."""
        reply = raise_on_error(
            self._send(
                Message(
                    "hello",
                    {
                        "model": model,
                        "params": params_to_dict(self.params),
                        "tenant": self.tenant,
                    },
                )
            )
        )
        self.session_id = reply.require("session")
        self.rescale_bits = int(reply.require("rescale_bits"))
        self._layer_meta = reply.require("layers")
        steps = [int(step) for step in reply.require("rotation_steps")]
        galois = self.scheme.generate_galois_keys(self.secret, steps)
        raise_on_error(
            self._send(
                Message(
                    "galois_keys",
                    {"session": self.session_id},
                    [serialize_galois_keys(galois, self.params)],
                )
            )
        )

    def close(self) -> None:
        if self.session_id is not None:
            self._send(Message("close", {"session": self.session_id}))
            self.session_id = None

    # -- inference ----------------------------------------------------------

    def infer(self, image: np.ndarray) -> ServingResult:
        """Private inference on a (ci, w, w) integer input tensor."""
        if self.session_id is None:
            raise RuntimeError("call connect() before infer()")
        t = self.params.plain_modulus
        evaluator = GarbledEvaluator(t, bit_width=t.bit_length())
        self._min_budget = float("inf")
        retries_before = getattr(self.transport, "retries", 0)
        busy_before = self._busy_retries
        current = np.asarray(image, dtype=np.int64)
        layers = list(self.network.layers)
        index = 0
        rounds = 0
        while index < len(layers):
            layer = layers[index]
            if not isinstance(layer, (ConvLayer, FCLayer)):
                raise TypeError(
                    f"activation layer {layer.name!r} without preceding linear layer"
                )
            masked, mask = self._linear_round(layer, current)
            rounds += 1
            index += 1
            post_ops: list[ActivationLayer] = []
            while index < len(layers) and isinstance(layers[index], ActivationLayer):
                post_ops.append(layers[index])
                index += 1
            current = gc_postprocess(
                masked, mask, post_ops, evaluator, t, self.rescale_bits
            )
        return ServingResult(
            logits=current,
            rounds=rounds,
            gc_cost=evaluator.total_cost,
            min_noise_budget=self._min_budget,
            transport_retries=(
                getattr(self.transport, "retries", 0) - retries_before
            ),
            busy_retries=self._busy_retries - busy_before,
        )

    def _linear_round(self, layer, activations):
        """Encrypt -> request -> decrypt for one linear layer."""
        scheme = self.scheme
        if isinstance(layer, ConvLayer):
            grid_w = int(self._layer_meta[layer.name]["grid_w"])
            grids, w = pad_and_grid_conv_input(layer, activations, grid_w)
            cts = [
                scheme.encrypt(
                    scheme.encoder.encode_row(pack_image(grid)), self.public
                )
                for grid in grids
            ]
            reply, mask = self._request_linear(layer, cts)
            masked_cts = [
                deserialize_ciphertext(blob, self.params)
                for blob in reply.blobs[:-1]
            ]
            self._observe_noise(masked_cts)
            dense_w = w - layer.fw + 1
            masked = decrypt_conv_outputs(
                scheme, self.secret, masked_cts, grid_w, dense_w
            )
            if layer.stride > 1:
                masked = masked[:, :: layer.stride, :: layer.stride]
                mask = mask[:, :: layer.stride, :: layer.stride]
            return masked, mask
        # FC layer: one duplicated-packing ciphertext each way.
        flat = activations.reshape(-1)
        packed = pack_fc_input(flat % self.params.plain_modulus, self.params.row_size)
        ct = scheme.encrypt(scheme.encoder.encode_row(packed), self.public)
        reply, mask = self._request_linear(layer, [ct])
        masked_ct = deserialize_ciphertext(reply.blobs[0], self.params)
        self._observe_noise([masked_ct])
        slots = scheme.encoder.decode_row(
            scheme.decrypt(masked_ct, self.secret), signed=False
        )
        return slots[: layer.no], mask

    def _request_busy_retry(self, message: Message) -> Message:
        """Issue one round, honouring server backpressure.

        A ``busy`` reply is the admission layer shedding load, not a
        failure: sleep for the server's ``retry_after_s`` hint and
        re-issue the identical round.  The protocol is deterministic and
        replayable, so the eventual reply is bit-identical to what an
        immediately admitted request would have received.
        """
        for _attempt in range(self.busy_retry_limit + 1):
            reply = self._send(message)
            if reply.kind != "busy":
                return reply
            self._busy_retries += 1
            time.sleep(min(float(reply.meta.get("retry_after_s", 0.05)), 5.0))
        raise ServingError(
            f"server still busy after {self.busy_retry_limit} retries"
        )

    def _request_linear(self, layer, cts):
        reply = raise_on_error(
            self._request_busy_retry(
                Message(
                    "linear",
                    {"session": self.session_id, "layer": layer.name},
                    [serialize_ciphertext(ct, self.params) for ct in cts],
                )
            )
        )
        shape = tuple(int(dim) for dim in reply.require("mask_shape"))
        count = int(np.prod(shape)) if shape else 1
        mask_blob = reply.blobs[-1]
        if len(mask_blob) != count * 8:
            raise ValueError(
                f"mask blob for {layer.name!r} has {len(mask_blob)} bytes, "
                f"expected {count * 8}"
            )
        mask = np.frombuffer(mask_blob, dtype="<i8").reshape(shape)
        return reply, mask

    def _observe_noise(self, cts) -> None:
        if not self.track_noise:
            return
        for ct in cts:
            self._min_budget = min(
                self._min_budget,
                invariant_noise_budget(self.scheme, ct, self.secret),
            )
