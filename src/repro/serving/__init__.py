"""Session-oriented serving runtime for private inference over the wire.

Everything PR 1-2 made fast (the batched RNS-NTT engine, compiled
linear-layer plans) becomes reachable by remote clients here: a
:class:`ServingEngine` terminates the Gazelle-style protocol rounds over
the :mod:`repro.bfv.serialize` wire format, a :class:`ModelRegistry`
amortises plan compilation across sessions, and concurrently pending
requests for the same layer are merged into single stacked ``(k, B, n)``
engine calls (cross-client batching).  Clients drive sessions with
:class:`ClientSession` over an in-process :class:`LoopbackTransport` or
the TCP :class:`SocketTransport` / :class:`SocketServer` pair.  Plan
math runs in-process by default (:class:`LocalExecutor`) or across a
pool of forked worker processes memmapping the same ``.rpa`` artifacts
(:class:`ShardPool` + :class:`ShardExecutor` -- bit-identical outputs,
multi-core throughput).  The shard fabric speaks three channel kinds:
pickling mp queues, zero-copy shared-memory rings
(:class:`~repro.serving.shm_ring.ShmRing`, ``channels="shm"``), and
remote TCP workers (:class:`ShardWorkerServer`, ``repro shard-worker``)
so a fleet of hosts memmapping the same artifacts serves one model.

Two front ends terminate TCP: the thread-per-connection
:class:`SocketServer` and the event-driven :class:`AsyncGateway`, which
multiplexes sessions onto an asyncio loop, bridges engine calls through
a small executor pool, enforces admission (:class:`AdmissionController`)
and serves a metrics snapshot (:class:`MetricsRegistry`) over HTTP on
the same port.  Both speak identical wire frames and are pinned to
bit-identical outputs by the conformance suite.

Observability is one :class:`Tracer` threaded through all of the above:
front ends mint per-request root spans, the engine and batcher hang
admission/deserialize/batch-wait/execute/blind/serialize children off
them, and shard workers ship their own deserialize/compute/serialize
spans back inside result frames to be stitched under the coordinator's
dispatch envelopes.  Traces export as Chrome ``trace_event`` JSON
(``repro trace``, ``--trace-dir``), per-span structured log lines
(:func:`configure_logging`), and per-stage latency histograms inside
the ``/metrics`` snapshot; ``/healthz`` and Prometheus text exposition
ride the same HTTP surface on both front ends.

Deployments stay live while they change: the zoo manifest carries a
monotonic generation, :meth:`ModelRegistry.reload_zoo` atomically swaps
in a new generation (in-flight rounds finish on their pinned entries),
:meth:`ShardPool.rolling_upgrade` drains and warm-respawns workers one
at a time so quorum is never violated, and an authenticated ``admin``
wire message (:func:`admin_message`, ``repro admin``) drives it all
from the operator's terminal through either front end.
"""

from .admission import AdmissionController, TokenBucket, busy_message
from .engine import (
    ExecutionBackendError,
    LocalExecutor,
    ServingEngine,
    SessionState,
)
from .faults import ConnectionFaults, WorkerFaults
from .gateway import AsyncGateway
from .logging import configure_logging
from .metrics import (
    MetricsRegistry,
    health_payload,
    noise_floor_bits,
    prometheus_text,
)
from .models import (
    DEMO_RESCALE_BITS,
    demo_image,
    demo_network,
    demo_params,
    demo_weights,
)
from .registry import ModelEntry, ModelRegistry
from .session import ClientSession, ServingResult
from .shards import (
    ShardError,
    ShardExecutor,
    ShardPool,
    ShardWorkerServer,
)
from .shm_ring import ShmRing
from .tracing import NULL_TRACER, SpanContext, Tracer
from .transport import (
    LoopbackTransport,
    SocketServer,
    SocketTransport,
    bind_listener,
    one_shot_request,
)
from .wire import (
    Message,
    ServingError,
    admin_message,
    decode_message,
    encode_message,
)

__all__ = [
    "ServingEngine",
    "SessionState",
    "LocalExecutor",
    "ExecutionBackendError",
    "AsyncGateway",
    "MetricsRegistry",
    "noise_floor_bits",
    "health_payload",
    "prometheus_text",
    "Tracer",
    "SpanContext",
    "NULL_TRACER",
    "configure_logging",
    "AdmissionController",
    "TokenBucket",
    "busy_message",
    "ShardPool",
    "ShardExecutor",
    "ShardError",
    "ShardWorkerServer",
    "ShmRing",
    "bind_listener",
    "ModelRegistry",
    "ModelEntry",
    "ClientSession",
    "ServingResult",
    "LoopbackTransport",
    "SocketServer",
    "SocketTransport",
    "Message",
    "ServingError",
    "admin_message",
    "one_shot_request",
    "WorkerFaults",
    "ConnectionFaults",
    "encode_message",
    "decode_message",
    "DEMO_RESCALE_BITS",
    "demo_network",
    "demo_weights",
    "demo_params",
    "demo_image",
]
