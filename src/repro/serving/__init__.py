"""Session-oriented serving runtime for private inference over the wire.

Everything PR 1-2 made fast (the batched RNS-NTT engine, compiled
linear-layer plans) becomes reachable by remote clients here: a
:class:`ServingEngine` terminates the Gazelle-style protocol rounds over
the :mod:`repro.bfv.serialize` wire format, a :class:`ModelRegistry`
amortises plan compilation across sessions, and concurrently pending
requests for the same layer are merged into single stacked ``(k, B, n)``
engine calls (cross-client batching).  Clients drive sessions with
:class:`ClientSession` over an in-process :class:`LoopbackTransport` or
the TCP :class:`SocketTransport` / :class:`SocketServer` pair.  Plan
math runs in-process by default (:class:`LocalExecutor`) or across a
pool of forked worker processes memmapping the same ``.rpa`` artifacts
(:class:`ShardPool` + :class:`ShardExecutor` -- bit-identical outputs,
multi-core throughput).
"""

from .engine import ExecutionBackendError, LocalExecutor, ServingEngine
from .faults import ConnectionFaults, WorkerFaults
from .models import (
    DEMO_RESCALE_BITS,
    demo_image,
    demo_network,
    demo_params,
    demo_weights,
)
from .registry import ModelEntry, ModelRegistry
from .session import ClientSession, ServingResult
from .shards import ShardError, ShardExecutor, ShardPool
from .transport import LoopbackTransport, SocketServer, SocketTransport
from .wire import Message, ServingError, decode_message, encode_message

__all__ = [
    "ServingEngine",
    "LocalExecutor",
    "ExecutionBackendError",
    "ShardPool",
    "ShardExecutor",
    "ShardError",
    "ModelRegistry",
    "ModelEntry",
    "ClientSession",
    "ServingResult",
    "LoopbackTransport",
    "SocketServer",
    "SocketTransport",
    "Message",
    "ServingError",
    "WorkerFaults",
    "ConnectionFaults",
    "encode_message",
    "decode_message",
    "DEMO_RESCALE_BITS",
    "demo_network",
    "demo_weights",
    "demo_params",
    "demo_image",
]
