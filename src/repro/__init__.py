"""Cheetah: Optimizing and Accelerating Homomorphic Encryption for
Private Inference (HPCA 2021) -- a complete reproduction.

Subpackages
-----------
``repro.bfv``
    From-scratch BFV homomorphic encryption (the SEAL stand-in).
``repro.core``
    HE-PTune performance/noise models, parameter tuning, Sched-PA,
    baselines, and the end-to-end framework.
``repro.scheduling``
    Live homomorphic convolution/FC under both dot-product schedules.
``repro.nn``
    The five-model zoo, quantization, and plaintext reference inference.
``repro.protocol``
    The Gazelle client-cloud HE+GC private-inference protocol.
``repro.profiling``
    Kernel profiling, the speedup-needed limit study, the GPU NTT model.
``repro.accel``
    The Cheetah accelerator: kernel cost models, PE/Lane architecture,
    whole-accelerator simulation and design-space exploration.
"""

from .core.framework import CheetahFramework, CheetahResult

__version__ = "1.0.0"

__all__ = ["CheetahFramework", "CheetahResult", "__version__"]
