"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``models``
    List the evaluation model zoo with layer counts and MACs.
``tune MODEL``
    Run HE-PTune + Sched-PA on a model and print per-layer parameters.
``speedups [MODEL ...]``
    The Figure 6 comparison (Gazelle vs HE-PTune vs Cheetah).
``accelerate MODEL``
    Full flow: tuning, profiling, limit study, accelerator DSE.
``params N PLAIN_BITS COEFF_BITS``
    Inspect a BFV parameter set (security, digits, noise capacity).
``compile MODEL -o model.rpa``
    Compile a model ahead of time into a ``.rpa`` artifact (offline
    weight encoding paid once; see :mod:`repro.artifacts`).
``serve [--host H] [--port P] [--artifacts DIR] [--workers N]``
    Run the multi-client private-inference server -- compiling the demo
    deployment at startup, or warm-starting a whole artifact directory
    with zero recompute.  ``--workers N`` shards plan execution across
    N forked worker processes memmapping the same artifacts
    (bit-identical logits, multi-core throughput); ``--ipc shm`` moves
    their ciphertext slabs through zero-copy shared-memory rings, and
    ``--remote-workers host:port,...`` adds remote ``repro
    shard-worker`` processes to the pool.  The front end is the
    event-driven asyncio gateway by default (``--frontend threaded``
    keeps the thread-per-connection server); ``--quota-rps``,
    ``--max-queue-depth``, ``--session-ttl-s`` and ``--stats-interval``
    control admission, session lifetime, and observability.  ``GET
    /healthz`` and ``GET /metrics`` (JSON, or Prometheus text with
    ``?format=prometheus``) answer on the serving port of either front
    end; ``--trace`` / ``--trace-dir`` turn on end-to-end request
    tracing, and ``--log-level`` / ``--log-json`` shape the structured
    logs.
``shard-worker --artifacts DIR [--host H] [--port P]``
    Run a standalone remote shard worker: memmaps the artifact
    directory and serves plan-layer tasks to any ``repro serve
    --remote-workers`` coordinator that connects.
``trace DIR [--tree] [--check] [--merge OUT]``
    Inspect the Chrome ``trace_event`` files a ``serve --trace-dir``
    process wrote: per-trace summaries, a span-tree view, validation
    with per-trace HE op totals, and merging for Perfetto.
``infer [--host H] [--port P] [--count K] [--model NAME]``
    Connect to a running server, run private inferences, verify logits.
``admin ACTION [--host H] [--port P] [--token T]``
    Operator control plane against a running server started with
    ``--admin-token``: ``status``, ``reload-zoo`` (swap in a new zoo
    generation and rolling-upgrade the shard pool with zero downtime),
    ``drain-worker``, ``evict-session``, ``drain-tenant``.  The token
    may also come from ``REPRO_ADMIN_TOKEN``.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import CheetahFramework
from .bfv import BfvParameters
from .core.baselines import FleetSummary, speedup_report
from .core.ptune import HePTune
from .nn.models import MODEL_BUILDERS, all_models, build_model


def _cmd_models(_args) -> int:
    print(f"{'model':<14}{'convs':>7}{'fcs':>5}{'MACs':>14}")
    for network in all_models():
        print(
            f"{network.name:<14}{len(network.conv_layers):>7}"
            f"{len(network.fc_layers):>5}{network.total_macs:>14,}"
        )
    return 0


def _cmd_tune(args) -> int:
    network = build_model(args.model)
    tuner = HePTune()
    print(f"{'layer':<16}{'n':>7}{'log t':>7}{'log q':>7}{'Adcmp':>7}{'budget':>8}")
    for tuned in tuner.tune_network(network):
        p = tuned.params
        print(
            f"{tuned.layer.name:<16}{p.n:>7}{p.plain_bits:>7}{p.coeff_bits:>7}"
            f"{f'2^{p.a_dcmp_bits}':>7}{tuned.noise.budget_bits:>7.1f}b"
        )
    return 0


def _cmd_speedups(args) -> int:
    names = args.models or list(MODEL_BUILDERS)
    reports = []
    print(f"{'model':<14}{'HE-PTune':>10}{'+Sched-PA':>11}{'combined':>10}")
    for name in names:
        report = speedup_report(build_model(name))
        reports.append(report)
        print(
            f"{name:<14}{report.ptune_speedup:>9.2f}x"
            f"{report.sched_pa_speedup:>10.2f}x{report.cheetah_speedup:>9.2f}x"
        )
    if len(reports) > 1:
        summary = FleetSummary(reports)
        print(f"harmonic mean combined: {summary.combined_harmonic_mean():.2f}x")
    return 0


def _cmd_accelerate(args) -> int:
    framework = CheetahFramework(target_latency_s=args.target_ms / 1000.0)
    result = framework.run(args.model)
    print(result.summary())
    selected = result.selected_design
    print(f"  IO utilization: {selected.io_utilization * 100:.0f}%")
    for kernel, factor in sorted(result.limit.speedups.items(), key=lambda kv: -kv[1]):
        print(f"  {kernel} speedup needed: {factor}x")
    return 0


def _cmd_report(args) -> int:
    from .reporting import write_report

    payload = write_report(args.out, args.models or None)
    print(f"wrote {args.out} with {len(payload)} experiment sections")
    return 0


def _cmd_params(args) -> int:
    params = BfvParameters.create(
        n=args.n,
        plain_bits=args.plain_bits,
        coeff_bits=args.coeff_bits,
        require_security=False,
    )
    print(params.describe())
    print(f"noise capacity: {params.noise_capacity_bits:.1f} bits")
    print(f"slots: {params.slot_count} ({params.row_size} per row)")
    if params.security_level == 0:
        print("WARNING: below 128-bit security")
    return 0


def _demo_schedule(name: str):
    from .core.noise_model import Schedule

    return Schedule.INPUT_ALIGNED if name == "ia" else Schedule.PARTIAL_ALIGNED


def _cmd_compile(args) -> int:
    import time

    from .artifacts import save_artifact, update_manifest
    from .serving import (
        DEMO_RESCALE_BITS,
        ModelRegistry,
        demo_network,
        demo_params,
        demo_weights,
    )

    params = demo_params(n=args.n)
    network = demo_network()
    print(f"compiling model {args.name!r} over {params.describe()} ...")
    start = time.perf_counter()
    entry = ModelRegistry().register(
        args.name,
        network,
        demo_weights(seed=args.seed),
        params,
        schedule=_demo_schedule(args.schedule),
        rescale_bits=DEMO_RESCALE_BITS,
    )
    compile_s = time.perf_counter() - start
    tuned = None
    if args.tune:
        from .core.ptune import HePTune

        tuned = {
            t.layer.name: {
                "n": t.params.n,
                "plain_bits": t.params.plain_bits,
                "coeff_bits": t.params.coeff_bits,
                "w_dcmp_bits": t.params.w_dcmp_bits,
                "a_dcmp_bits": t.params.a_dcmp_bits,
            }
            for t in HePTune().tune_network(network)
        }
    path = save_artifact(entry, args.out, tuned=tuned)
    size = path.stat().st_size
    print(
        f"wrote {path} ({size / 1e6:.2f} MB, "
        f"{len(entry.plans)} compiled plans, "
        f"{len(entry.rotation_steps)} rotation steps) "
        f"in {compile_s:.2f}s"
    )
    if args.manifest:
        manifest = update_manifest(path.parent, entry, path.name, tuned=tuned)
        print(f"updated {manifest}")
    return 0


def _stats_loop(metrics, interval_s: float, stop_event, log=None) -> None:
    """Periodic metrics-snapshot dump behind ``serve --stats-interval``.

    Runs until ``stop_event`` is set; each tick logs one sorted-keys
    JSON object (grep-able, machine-parsable) of the full registry
    snapshot.
    """
    import json
    import logging

    log = log if log is not None else logging.getLogger("repro.serving.cli")
    while not stop_event.wait(interval_s):
        log.info("stats: %s", json.dumps(metrics.snapshot(), sort_keys=True))


def _cmd_serve(args) -> int:
    import logging
    import signal
    import tempfile
    import threading
    from pathlib import Path

    from .serving import (
        DEMO_RESCALE_BITS,
        AdmissionController,
        AsyncGateway,
        MetricsRegistry,
        ModelRegistry,
        ServingEngine,
        SocketServer,
        configure_logging,
        demo_network,
        demo_params,
        demo_weights,
    )

    configure_logging(args.log_level, args.log_json)
    log = logging.getLogger("repro.serving.cli")
    remote_workers = [
        spec.strip()
        for spec in (args.remote_workers or "").split(",")
        if spec.strip()
    ]
    scratch_dir = None
    if args.artifacts:
        from .artifacts import load_zoo

        artifact_dir = args.artifacts
        registry = load_zoo(artifact_dir)
        for name in registry.names():
            entry = registry.get(name)
            log.info(
                "warm-started model %r from artifacts (%d plans, %s)",
                name, len(entry.plans), entry.params.describe(),
            )
    else:
        params = demo_params(n=args.n)
        registry = ModelRegistry()
        log.info("compiling plans for model 'demo' over %s ...", params.describe())
        entry = registry.register(
            "demo",
            demo_network(),
            demo_weights(),
            params,
            schedule=_demo_schedule(args.schedule),
            rescale_bits=DEMO_RESCALE_BITS,
        )
        artifact_dir = None
        if args.workers > 0:
            # Shard workers warm-start from artifacts (shared weight
            # pages); without --artifacts, stage the compiled demo into
            # a scratch zoo the workers can load.
            from .artifacts import save_artifact, update_manifest

            scratch_dir = tempfile.TemporaryDirectory(prefix="repro-shards-")
            artifact_dir = scratch_dir.name
            save_artifact(entry, Path(artifact_dir) / "demo.rpa")
            update_manifest(artifact_dir, entry, "demo.rpa")

    pool = None
    executor = None
    if args.workers > 0 or remote_workers:
        from .serving import ShardExecutor, ShardPool

        pool = ShardPool(
            artifact_dir if args.workers > 0 else None,
            workers=args.workers,
            max_attempts=args.max_attempts,
            channels=args.ipc,
            remote_endpoints=remote_workers or None,
        ).start()
        executor = ShardExecutor(pool)
        local = (
            f"{args.workers} local worker process(es) "
            f"({args.ipc} channels) memmapping {artifact_dir}"
            if args.workers > 0 else "no local workers"
        )
        remote = (
            f" + {len(remote_workers)} remote worker(s) {remote_workers}"
            if remote_workers else ""
        )
        log.info(
            "shard pool ready: %s%s (models %s, max_attempts=%d)",
            local, remote, pool.model_names, pool.max_attempts,
        )
    metrics = MetricsRegistry()
    admission = AdmissionController(
        rate_per_tenant=args.quota_rps,
        burst=args.quota_burst,
        max_queue_depth=args.max_queue_depth,
    )
    tracer = None
    if args.trace or args.trace_dir:
        from .serving import Tracer

        tracer = Tracer(
            metrics=metrics,
            trace_dir=args.trace_dir or None,
            max_trace_files=args.trace_retention,
            log_spans=args.log_json,
        )
        log.info(
            "request tracing enabled%s",
            f" (trace files -> {args.trace_dir}, "
            f"retention {args.trace_retention})" if args.trace_dir else "",
        )
    admin_token = args.admin_token or os.environ.get("REPRO_ADMIN_TOKEN", "")
    engine = ServingEngine(
        registry,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms / 1000,
        executor=executor,
        request_deadline_s=args.request_deadline_s or None,
        session_ttl_s=args.session_ttl_s or None,
        metrics=metrics,
        admission=admission,
        tracer=tracer,
        admin_token=admin_token or None,
    )
    if admin_token:
        log.info("admin control plane enabled (repro admin --token ...)")
    max_frame_bytes = (
        int(args.max_frame_mb * (1 << 20)) if args.max_frame_mb else None
    )
    if args.frontend == "async":
        server = AsyncGateway(
            engine,
            host=args.host,
            port=args.port,
            executor_threads=args.threads,
            max_frame_bytes=max_frame_bytes,
        )
    else:
        server = SocketServer(
            engine,
            host=args.host,
            port=args.port,
            workers=args.threads,
            max_frame_bytes=max_frame_bytes,
        )
    server.start()
    log.info(
        "serving %d model(s) %s on %s:%d "
        "(frontend=%s, max_batch=%d, threads=%d, shard_workers=%d)",
        len(registry.names()), registry.names(), server.host, server.port,
        args.frontend, engine.max_batch, args.threads, args.workers,
    )
    log.info(
        "http: curl http://%s:%d/healthz | .../metrics (JSON snapshot) | "
        ".../metrics?format=prometheus (text exposition)",
        server.host, server.port,
    )

    # Graceful shutdown: SIGTERM (fleet orchestrators) and SIGINT both
    # drain in-flight requests through SocketServer.stop() instead of
    # killing the accept loop mid-reply; the shard pool drains after the
    # front end (in-flight requests may still need workers).
    stop_requested = threading.Event()

    def _request_stop(_signum, _frame):
        stop_requested.set()

    signal.signal(signal.SIGINT, _request_stop)
    signal.signal(signal.SIGTERM, _request_stop)
    if args.stats_interval > 0:
        threading.Thread(
            target=_stats_loop,
            args=(metrics, args.stats_interval, stop_requested, log),
            name="repro-serve-stats", daemon=True,
        ).start()
    log.info("press Ctrl-C (or send SIGTERM) to stop")
    stop_requested.wait()
    log.info("shutting down (draining in-flight requests)")
    server.stop()
    if engine.backend_failures:
        log.warning(
            "backend failures: %d (degraded layer calls served locally: %d)",
            engine.backend_failures, engine.degraded_calls,
        )
    if pool is not None:
        if pool.respawns_total or pool.retries_total:
            log.warning(
                "shard supervision: %d respawn(s), %d task retry(ies)",
                pool.respawns_total, pool.retries_total,
            )
        pool.stop()
    if tracer is not None:
        log.info(
            "tracer: %d trace(s), %d span(s), %d dropped from the ring",
            tracer.traces_total, tracer.spans_total, tracer.dropped_traces,
        )
    if scratch_dir is not None:
        scratch_dir.cleanup()
    return 0


def _cmd_shard_worker(args) -> int:
    import logging
    import signal
    import threading

    from .serving import ShardWorkerServer, configure_logging

    configure_logging(args.log_level, args.log_json)
    log = logging.getLogger("repro.serving.cli")
    server = ShardWorkerServer(
        args.artifacts, host=args.host, port=args.port
    ).start()
    log.info(
        "shard worker serving models %s on %s (artifacts: %s)",
        server.registry.names(), server.endpoint, args.artifacts,
    )
    stop_requested = threading.Event()

    def _request_stop(_signum, _frame):
        stop_requested.set()

    signal.signal(signal.SIGINT, _request_stop)
    signal.signal(signal.SIGTERM, _request_stop)
    log.info("press Ctrl-C (or send SIGTERM) to stop")
    stop_requested.wait()
    log.info("shutting down (%d task(s) served)", server.tasks_served)
    server.stop()
    return 0


def _cmd_trace(args) -> int:
    import json
    from pathlib import Path

    directory = Path(args.dir)
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 1
    paths = sorted(directory.glob("trace-*.json"))
    if not paths:
        print(f"error: no trace-*.json files under {directory}", file=sys.stderr)
        return 1 if args.check else 0

    def _load(path: Path):
        """Parse one trace file; returns (events, problems)."""
        problems: list[str] = []
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            return [], [f"unreadable JSON: {exc}"]
        events = payload.get("traceEvents")
        if not isinstance(events, list) or not events:
            return [], ["empty or missing traceEvents"]
        for index, event in enumerate(events):
            if event.get("ph") != "X":
                problems.append(f"event {index}: ph {event.get('ph')!r} != 'X'")
            for field in ("name", "ts", "dur", "pid", "tid"):
                if field not in event:
                    problems.append(f"event {index}: missing {field!r}")
        return events, problems

    def _he_ops_totals(events):
        """Sum he_ops over leaf compute spans (worker.compute, else execute)."""
        totals: dict[str, int] = {}
        names = {event.get("name") for event in events}
        leaf = "worker.compute" if "worker.compute" in names else "execute"
        for event in events:
            if event.get("name") != leaf:
                continue
            ops = (event.get("args") or {}).get("he_ops") or {}
            for op, count in ops.items():
                totals[op] = totals.get(op, 0) + int(count)
        return leaf, totals

    bad = 0
    print(f"{'file':<40}{'spans':>7}{'dur_ms':>9}  root")
    for path in paths:
        events, problems = _load(path)
        if problems:
            bad += 1
            print(f"{path.name:<40}  INVALID: {problems[0]}")
            continue
        span_ms = max(e["ts"] + e["dur"] for e in events) / 1000.0
        roots = [e for e in events if not (e.get("args") or {}).get("parent_id")]
        root = roots[0]["name"] if roots else "?"
        print(f"{path.name:<40}{len(events):>7}{span_ms:>9.2f}  {root}")
        if args.check:
            leaf, totals = _he_ops_totals(events)
            if totals:
                ops = ", ".join(f"{op}={n}" for op, n in sorted(totals.items()))
                print(f"{'':<40}  {leaf} he_ops: {ops}")
    if args.tree:
        events, problems = _load(paths[-1])
        if not problems:
            print(f"\nspan tree of {paths[-1].name}:")
            by_id = {(e.get("args") or {}).get("span_id"): e for e in events}
            children: dict = {}
            for event in events:
                parent = (event.get("args") or {}).get("parent_id")
                children.setdefault(parent if parent in by_id else None, []).append(event)

            def _walk(parent_id, depth):
                for event in sorted(
                    children.get(parent_id, []), key=lambda e: e["ts"]
                ):
                    print(
                        f"  {'  ' * depth}{event['name']:<{24 - 2 * min(depth, 8)}} "
                        f"{event['dur'] / 1000.0:>9.3f} ms"
                    )
                    _walk((event.get("args") or {}).get("span_id"), depth + 1)

            _walk(None, 0)
    if args.merge:
        merged: list = []
        for path in paths:
            events, problems = _load(path)
            if not problems:
                merged.extend(events)
        Path(args.merge).write_text(
            json.dumps(
                {"traceEvents": merged, "displayTimeUnit": "ms"}, indent=1
            )
        )
        print(f"\nmerged {len(merged)} event(s) from {len(paths)} file(s) "
              f"into {args.merge}")
    if bad:
        print(f"\n{bad}/{len(paths)} trace file(s) invalid", file=sys.stderr)
        return 1 if args.check else 0
    return 0


def _cmd_infer(args) -> int:
    import numpy as np

    from .nn.plaintext import PlaintextRunner
    from .serving import (
        DEMO_RESCALE_BITS,
        ClientSession,
        SocketTransport,
        demo_image,
        demo_network,
        demo_params,
        demo_weights,
    )

    params = demo_params(n=args.n)
    network = demo_network()
    runner = PlaintextRunner(
        network, demo_weights(seed=args.weights_seed), rescale_bits=DEMO_RESCALE_BITS
    )
    from .serving.faults import ConnectionFaults

    conn_faults = ConnectionFaults.from_env()
    if conn_faults is not None:
        print("connection fault injection active (REPRO_FAULT_CONN_*)")
    with SocketTransport(
        args.host, args.port,
        socket_factory=None if conn_faults is None else conn_faults.connect,
    ) as transport:
        session = ClientSession(
            network, params, transport, seed=args.seed,
            track_noise=args.noise, tenant=args.tenant,
        )
        session.connect(args.model)
        print(f"session {session.session_id} connected to {args.host}:{args.port}")
        failures = 0
        for index in range(args.count):
            image = demo_image(args.seed + index)
            result = session.infer(image)
            expected = runner.run(image)
            match = np.array_equal(result.logits, expected)
            failures += 0 if match else 1
            budget = (
                f", min budget {result.min_noise_budget:.1f}b" if args.noise else ""
            )
            print(
                f"inference {index}: logits {result.logits.tolist()} "
                f"(matches plaintext: {match}{budget})"
            )
        session.close()
        if getattr(transport, "retries", 0):
            print(f"transport retries: {transport.retries}")
        if session._busy_retries:
            print(f"busy retries (server backpressure): {session._busy_retries}")
    return 1 if failures else 0


def _cmd_admin(args) -> int:
    import json

    from .serving import admin_message, one_shot_request

    token = args.token or os.environ.get("REPRO_ADMIN_TOKEN", "")
    if not token:
        print(
            "error: no admin token (pass --token or set REPRO_ADMIN_TOKEN)",
            file=sys.stderr,
        )
        return 2
    meta = {}
    if args.action == "reload-zoo":
        if args.directory:
            meta["directory"] = args.directory
        meta["rolling"] = not args.no_rolling
    elif args.action == "drain-worker":
        if args.worker is None:
            print("error: drain-worker requires --worker ID", file=sys.stderr)
            return 2
        meta["worker"] = args.worker
        meta["resume"] = args.resume
        meta["wait_s"] = args.wait_s
    elif args.action == "evict-session":
        if not args.session:
            print("error: evict-session requires --session ID", file=sys.stderr)
            return 2
        meta["session"] = args.session
    elif args.action == "drain-tenant":
        if not args.tenant:
            print("error: drain-tenant requires --tenant NAME", file=sys.stderr)
            return 2
        meta["tenant"] = args.tenant
    try:
        reply = one_shot_request(
            args.host, args.port,
            admin_message(args.action, token, **meta),
            timeout=args.timeout_s,
        )
    except (OSError, ConnectionError) as exc:
        print(f"error: {args.host}:{args.port} unreachable: {exc}", file=sys.stderr)
        return 1
    if reply.kind != "admin_ok":
        print(
            f"error: {reply.meta.get('reason', 'unspecified server error')}",
            file=sys.stderr,
        )
        return 1
    print(json.dumps(reply.meta.get("result", {}), indent=2, sort_keys=True))
    return 0


def _add_log_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level", default="info", dest="log_level",
        choices=["debug", "info", "warning", "error"],
        help="verbosity of the 'repro' logger tree (debug logs every "
             "finished span when tracing is on)",
    )
    parser.add_argument(
        "--log-json", action="store_true", dest="log_json",
        help="emit log records as JSON lines (one object per line; span "
             "records carry the full span payload)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Cheetah (HPCA 2021) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the evaluation model zoo")

    tune = sub.add_parser("tune", help="per-layer HE-PTune parameters")
    tune.add_argument("model", choices=sorted(MODEL_BUILDERS))

    speedups = sub.add_parser("speedups", help="Figure 6 comparison")
    speedups.add_argument("models", nargs="*")

    accelerate = sub.add_parser("accelerate", help="full Cheetah flow")
    accelerate.add_argument("model", choices=sorted(MODEL_BUILDERS))
    accelerate.add_argument("--target-ms", type=float, default=100.0)

    report = sub.add_parser("report", help="export experiment results as JSON")
    report.add_argument("--out", default="cheetah_results.json")
    report.add_argument("models", nargs="*")

    params = sub.add_parser("params", help="inspect a BFV parameter set")
    params.add_argument("n", type=int)
    params.add_argument("plain_bits", type=int)
    params.add_argument("coeff_bits", type=int)

    compile_ = sub.add_parser(
        "compile",
        help="compile a model ahead of time into a .rpa artifact",
    )
    compile_.add_argument(
        "model", choices=["demo"],
        help="deployment to compile (the live-HE demo CNN)",
    )
    compile_.add_argument(
        "-o", "--out", default="demo.rpa", help="artifact output path"
    )
    compile_.add_argument(
        "--name", default="demo", help="model name to register the artifact under"
    )
    compile_.add_argument("--n", type=int, default=4096, help="ring dimension")
    compile_.add_argument(
        "--schedule", choices=["ia", "pa"], default="ia",
        help="dot-product schedule to compile the plans with",
    )
    compile_.add_argument(
        "--seed", type=int, default=0, help="synthetic-weight seed"
    )
    compile_.add_argument(
        "--manifest", action="store_true",
        help="also add/refresh the artifact's entry in the directory's "
             "manifest.json (the zoo deployment record)",
    )
    compile_.add_argument(
        "--tune", action="store_true",
        help="stamp HE-PTune per-layer tuned parameters into the artifact",
    )

    serve = sub.add_parser("serve", help="run the private-inference server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7707)
    serve.add_argument("--n", type=int, default=4096, help="ring dimension")
    serve.add_argument(
        "--schedule", choices=["ia", "pa"], default="ia",
        help="dot-product schedule for the compiled plans",
    )
    serve.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="warm-start from a directory of compiled .rpa artifacts "
             "instead of compiling at startup",
    )
    serve.add_argument("--max-batch", type=int, default=8, dest="max_batch")
    serve.add_argument(
        "--batch-window-ms", type=float, default=20.0, dest="batch_window_ms"
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="shard worker processes executing plan layers "
             "(0 = run plans in the server process)",
    )
    serve.add_argument(
        "--ipc", choices=["queue", "shm"], default="queue",
        help="local shard-worker channel kind: pickling mp queues, or "
             "zero-copy shared-memory rings for ciphertext slabs",
    )
    serve.add_argument(
        "--remote-workers", default="", dest="remote_workers",
        metavar="HOST:PORT,...",
        help="comma-separated 'repro shard-worker' endpoints to add to "
             "the shard pool (may be combined with local --workers)",
    )
    serve.add_argument(
        "--threads", type=int, default=16,
        help="engine thread budget: executor threads for the async "
             "gateway (connections are unbounded), or max concurrently "
             "connected clients for --frontend threaded (one thread per "
             "connection)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3, dest="max_attempts",
        help="attempts per shard task before the engine degrades the "
             "layer call to in-process execution",
    )
    serve.add_argument(
        "--request-deadline-s", type=float, default=0.0,
        dest="request_deadline_s",
        help="soft per-round deadline in seconds (0 = no deadline); a "
             "shard backend that cannot meet it degrades to in-process "
             "execution",
    )
    serve.add_argument(
        "--frontend", choices=["async", "threaded"], default="async",
        help="TCP front end: the event-driven asyncio gateway (default; "
             "sessions multiplex onto --threads executor threads, metrics "
             "served on the same port) or the thread-per-connection server",
    )
    serve.add_argument(
        "--session-ttl-s", type=float, default=0.0, dest="session_ttl_s",
        help="evict sessions idle longer than this (seconds), reclaiming "
             "their Galois keys and traffic logs (0 = LRU eviction only)",
    )
    serve.add_argument(
        "--quota-rps", type=float, default=0.0, dest="quota_rps",
        help="per-tenant sustained linear-rounds/sec quota (0 = unlimited); "
             "a tenant over quota gets BUSY replies with a retry hint",
    )
    serve.add_argument(
        "--quota-burst", type=float, default=0.0, dest="quota_burst",
        help="per-tenant token-bucket burst capacity (0 = 2x --quota-rps)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=0, dest="max_queue_depth",
        help="bound on linear rounds in flight across all tenants "
             "(0 = unbounded); excess load gets BUSY replies",
    )
    serve.add_argument(
        "--stats-interval", type=float, default=0.0, dest="stats_interval",
        help="print the metrics snapshot as JSON every N seconds (0 = off)",
    )
    serve.add_argument(
        "--max-frame-mb", type=float, default=0.0, dest="max_frame_mb",
        help="request-frame size cap in MiB, enforced from the length "
             "prefix before any buffering (0 = the 1 GiB wire default)",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help="enable end-to-end request tracing (spans across front end, "
             "batcher, executor, and shard workers; per-stage latency "
             "histograms fold into /metrics)",
    )
    serve.add_argument(
        "--trace-dir", default="", dest="trace_dir", metavar="DIR",
        help="write each finished trace as Chrome trace_event JSON into "
             "DIR (implies --trace; open in Perfetto / chrome://tracing, "
             "or inspect with 'repro trace DIR')",
    )
    serve.add_argument(
        "--trace-retention", type=int, default=64, dest="trace_retention",
        help="trace files kept in --trace-dir before the oldest are "
             "pruned (bounded ring, default 64)",
    )
    serve.add_argument(
        "--admin-token", default="", dest="admin_token",
        help="shared secret enabling the 'repro admin' control plane "
             "(reload-zoo, drain-worker, evict-session, ...); defaults "
             "to $REPRO_ADMIN_TOKEN, empty disables admin entirely",
    )
    _add_log_flags(serve)

    shard_worker = sub.add_parser(
        "shard-worker",
        help="run a standalone remote shard worker serving plan layers",
    )
    shard_worker.add_argument(
        "--artifacts", required=True, metavar="DIR",
        help="directory of compiled .rpa artifacts to memmap (must match "
             "the coordinator's artifact set)",
    )
    shard_worker.add_argument("--host", default="127.0.0.1")
    shard_worker.add_argument(
        "--port", type=int, default=7917,
        help="port to listen on (0 picks a free port)",
    )
    _add_log_flags(shard_worker)

    trace = sub.add_parser(
        "trace",
        help="inspect Chrome trace_event files written by serve --trace-dir",
    )
    trace.add_argument(
        "dir", help="trace directory (the serve process's --trace-dir)"
    )
    trace.add_argument(
        "--tree", action="store_true",
        help="print the span tree of the newest trace",
    )
    trace.add_argument(
        "--check", action="store_true",
        help="validate every file (non-empty, complete 'X' events) and "
             "print leaf he_ops sums; exit 1 on any invalid/missing trace",
    )
    trace.add_argument(
        "--merge", default="", metavar="OUT",
        help="concatenate all valid traces into one trace_event JSON "
             "(per-trace timelines stay disjoint; handy for Perfetto)",
    )

    infer = sub.add_parser("infer", help="run private inference against a server")
    infer.add_argument("--host", default="127.0.0.1")
    infer.add_argument("--port", type=int, default=7707)
    infer.add_argument("--n", type=int, default=4096, help="ring dimension")
    infer.add_argument("--count", type=int, default=1)
    infer.add_argument("--seed", type=int, default=0)
    infer.add_argument(
        "--model", default="demo", help="served model name to connect to"
    )
    infer.add_argument(
        "--weights-seed", type=int, default=0, dest="weights_seed",
        help="synthetic-weight seed of the served model (for the local "
             "plaintext check)",
    )
    infer.add_argument(
        "--noise", action="store_true", help="report the received noise budget"
    )
    infer.add_argument(
        "--tenant", default="default",
        help="tenant label for the server's per-tenant rate limits",
    )

    admin = sub.add_parser(
        "admin",
        help="operator actions against a server started with --admin-token",
    )
    admin.add_argument(
        "action",
        choices=[
            "status", "reload-zoo", "drain-worker", "evict-session",
            "drain-tenant",
        ],
        help="status: health/zoo/pool summary; reload-zoo: swap in the "
             "new zoo generation and rolling-upgrade the shard pool; "
             "drain-worker: take one worker out of dispatch; "
             "evict-session / drain-tenant: force session eviction",
    )
    admin.add_argument("--host", default="127.0.0.1")
    admin.add_argument("--port", type=int, default=7707)
    admin.add_argument(
        "--token", default="",
        help="admin shared secret (defaults to $REPRO_ADMIN_TOKEN)",
    )
    admin.add_argument(
        "--timeout-s", type=float, default=120.0, dest="timeout_s",
        help="reply timeout in seconds (a rolling upgrade drains workers "
             "one at a time, so reload-zoo replies can take a while)",
    )
    admin.add_argument(
        "--directory", default="", metavar="DIR",
        help="reload-zoo: zoo directory to load (default: the directory "
             "the server already serves, re-read for a new generation)",
    )
    admin.add_argument(
        "--no-rolling", action="store_true", dest="no_rolling",
        help="reload-zoo: swap the registry only; skip the shard-pool "
             "rolling upgrade",
    )
    admin.add_argument(
        "--worker", type=int, default=None,
        help="drain-worker: shard worker id",
    )
    admin.add_argument(
        "--resume", action="store_true",
        help="drain-worker: put the worker back into dispatch instead",
    )
    admin.add_argument(
        "--wait-s", type=float, default=30.0, dest="wait_s",
        help="drain-worker: seconds to wait for in-flight tasks",
    )
    admin.add_argument(
        "--session", default="", help="evict-session: session id"
    )
    admin.add_argument(
        "--tenant", default="", help="drain-tenant: tenant name"
    )

    return parser


_COMMANDS = {
    "models": _cmd_models,
    "report": _cmd_report,
    "tune": _cmd_tune,
    "speedups": _cmd_speedups,
    "accelerate": _cmd_accelerate,
    "params": _cmd_params,
    "compile": _cmd_compile,
    "serve": _cmd_serve,
    "shard-worker": _cmd_shard_worker,
    "trace": _cmd_trace,
    "infer": _cmd_infer,
    "admin": _cmd_admin,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
