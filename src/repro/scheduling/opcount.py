"""Measured HE-operation traces for live scheduled layers.

Bridges the live schedulers and HE-PTune's analytical model: runs a layer
on real ciphertexts while snapshotting the global counters, so tests and
benches can validate Table IV's op-count predictions against actual
executions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bfv.counters import GLOBAL_COUNTERS, OpCounters


@dataclass(frozen=True)
class OpTrace:
    """HE operations observed while executing one layer."""

    he_mult: int
    he_add: int
    he_rotate: int
    ntt: int
    int_mults: int


class TraceRecorder:
    """Context manager capturing the counter delta of a code region."""

    def __enter__(self) -> "TraceRecorder":
        self._before = GLOBAL_COUNTERS.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._delta = GLOBAL_COUNTERS.diff(self._before)

    @property
    def trace(self) -> OpTrace:
        delta: OpCounters = self._delta
        return OpTrace(
            he_mult=delta.he_mult,
            he_add=delta.he_add,
            he_rotate=delta.he_rotate,
            ntt=delta.ntt,
            int_mults=delta.int_mults,
        )
