"""Live homomorphic layer schedulers: Sched-PA (Cheetah) and Sched-IA
(Gazelle baseline) convolution and fully connected layers."""

from .conv2d import (
    conv2d_he,
    conv2d_he_naive,
    conv2d_he_small,
    conv_rotation_steps,
    encrypt_channels,
)
from .dot_product import (
    accumulate,
    input_aligned_term,
    partial_aligned_term,
)
from .fc import fc_he, fc_he_naive, fc_he_small, fc_rotation_steps, pack_fc_input
from .layouts import (
    conv_tap_plaintext_ia,
    conv_tap_plaintext_pa,
    fc_diagonal,
    pack_image,
    pad_fc_weights,
    tap_offset,
    unpack_image,
    valid_output_positions,
)
from .opcount import OpTrace, TraceRecorder
from .plan import (
    ConvPlan,
    FcPlan,
    cached_conv_plan,
    cached_fc_plan,
    compile_linear_plan,
)

__all__ = [
    "ConvPlan",
    "FcPlan",
    "cached_conv_plan",
    "cached_fc_plan",
    "compile_linear_plan",
    "conv2d_he",
    "conv2d_he_naive",
    "conv2d_he_small",
    "conv_rotation_steps",
    "encrypt_channels",
    "accumulate",
    "input_aligned_term",
    "partial_aligned_term",
    "fc_he",
    "fc_he_naive",
    "fc_he_small",
    "fc_rotation_steps",
    "pack_fc_input",
    "conv_tap_plaintext_ia",
    "conv_tap_plaintext_pa",
    "fc_diagonal",
    "pack_image",
    "pad_fc_weights",
    "tap_offset",
    "unpack_image",
    "valid_output_positions",
    "OpTrace",
    "TraceRecorder",
]
