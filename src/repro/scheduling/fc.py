"""Homomorphic fully connected layers via the diagonal method.

"FC layers follow precisely the same steps as CNNs, as the core
primitives are also dot products" (Section V-B).  The diagonal method
computes all outputs simultaneously: output slot j accumulates
``W[j, (j + d) mod ni] * x[(j + d) mod ni]`` over diagonals d, needing
one HE_Mult and one HE_Rotate per diagonal under either schedule.

The input vector is packed twice (slots [0, ni) and [ni, 2 ni)) so that
row rotations emulate the cyclic-mod-ni indexing the method requires;
this duplication trick is the standard lowering and needs 2 ni slots.
"""

from __future__ import annotations

import numpy as np

from ..bfv.keys import GaloisKeys, PublicKey, SecretKey
from ..bfv.scheme import BfvScheme, Ciphertext
from ..core.noise_model import Schedule
from .dot_product import accumulate, input_aligned_term, partial_aligned_term
from .layouts import pad_fc_weights


def fc_rotation_steps(ni: int) -> list[int]:
    """Rotation steps the diagonal method needs for an ni-input layer."""
    return list(range(1, ni))


def pack_fc_input(inputs: np.ndarray, row_size: int) -> np.ndarray:
    """Duplicate the input vector so rotations wrap cyclically mod ni."""
    inputs = np.asarray(inputs, dtype=np.int64)
    ni = inputs.shape[0]
    if 2 * ni > row_size:
        raise ValueError(f"need 2*ni={2 * ni} slots, row has {row_size}")
    packed = np.zeros(row_size, dtype=np.int64)
    packed[:ni] = inputs
    packed[ni : 2 * ni] = inputs
    return packed


def _diagonal_plaintext(
    square: np.ndarray, d: int, row_size: int, schedule: Schedule
) -> np.ndarray:
    """Weight vector for diagonal d against the duplicated input packing.

    Sched-IA multiplies the *rotated* input, so the coefficient for output
    j sits at slot j.  Sched-PA multiplies the unrotated (duplicated)
    input, so the coefficient sits at slot j + d and the partial rotates
    left by d afterwards.
    """
    ni = square.shape[0]
    values = np.zeros(row_size, dtype=np.int64)
    for j in range(ni):
        coeff = square[j, (j + d) % ni]
        slot = j + d if schedule is Schedule.PARTIAL_ALIGNED else j
        values[slot] = coeff
    return values


def fc_he(
    scheme: BfvScheme,
    ct_x: Ciphertext,
    weights: np.ndarray,
    galois_keys: GaloisKeys,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
) -> Ciphertext:
    """Homomorphic matrix-vector product via a compiled plan.

    Outputs land in slots ``0..no-1``; ``ct_x`` must hold the duplicated
    input packing produced by :func:`pack_fc_input`.  Resolves an
    :class:`repro.scheduling.plan.FcPlan` (memoized per scheme, so
    repeated calls with the same weights pay the offline encoding once)
    and executes it; the per-diagonal loop survives as
    :func:`fc_he_naive`, the bit-exact reference.
    """
    from .plan import cached_fc_plan  # local import: plan builds on this module

    plan = cached_fc_plan(scheme, weights, schedule)
    return plan.execute(ct_x, galois_keys)


def fc_he_naive(
    scheme: BfvScheme,
    ct_x: Ciphertext,
    weights: np.ndarray,
    galois_keys: GaloisKeys,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
) -> Ciphertext:
    """Reference diagonal method: one online-encoded HE_Mult and one
    HE_Rotate per diagonal, matching Table IV's operation census.
    """
    weights = np.asarray(weights, dtype=np.int64)
    no, ni = weights.shape
    row_size = scheme.params.row_size
    if 2 * ni > row_size:
        raise ValueError(f"ni={ni} needs {2 * ni} slots, row has {row_size}")
    square = pad_fc_weights(weights)
    partials = []
    for d in range(ni):
        diag = _diagonal_plaintext(square, d, row_size, schedule)
        if schedule is Schedule.PARTIAL_ALIGNED:
            partials.append(partial_aligned_term(scheme, ct_x, diag, d, galois_keys))
        else:
            partials.append(input_aligned_term(scheme, ct_x, diag, d, galois_keys))
    return accumulate(scheme, partials)


def fc_he_small(
    scheme: BfvScheme,
    inputs: np.ndarray,
    weights: np.ndarray,
    public: PublicKey,
    secret: SecretKey,
    galois_keys: GaloisKeys,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
) -> np.ndarray:
    """Encrypt -> multiply -> decrypt helper returning the no outputs."""
    inputs = np.asarray(inputs, dtype=np.int64)
    no, ni = np.asarray(weights).shape
    if inputs.shape != (ni,):
        raise ValueError(f"expected {ni} inputs, got {inputs.shape}")
    packed = pack_fc_input(inputs, scheme.params.row_size)
    ct = scheme.encrypt(scheme.encoder.encode_row(packed), public)
    out_ct = fc_he(scheme, ct, weights, galois_keys, schedule)
    slots = scheme.encoder.decode_row(scheme.decrypt(out_ct, secret))
    return slots[:no]
