"""Slot packing layouts for homomorphic CNN and FC layers (Figure 4).

Activations are packed row-major into the slots of one batching row:
pixel (y, x) of a w x w image sits in slot ``y * w + x``.  Weight
plaintexts place each filter tap's coefficient at exactly the slots whose
product contributes to a valid output, with zeros elsewhere -- the
"zeros found in weight plaintext slots ensure the correct computation"
boundary handling of Section V-B.
"""

from __future__ import annotations

import numpy as np


def pack_image(image: np.ndarray) -> np.ndarray:
    """Flatten a (w, w) image row-major for slot packing."""
    image = np.asarray(image, dtype=np.int64)
    if image.ndim != 2 or image.shape[0] != image.shape[1]:
        raise ValueError(f"expected a square image, got {image.shape}")
    return image.reshape(-1)


def unpack_image(slots: np.ndarray, w: int) -> np.ndarray:
    """Inverse of :func:`pack_image`."""
    return np.asarray(slots[: w * w], dtype=np.int64).reshape(w, w)


def tap_offset(dy: int, dx: int, w: int) -> int:
    """Slot distance between output position s and input pixel s + offset."""
    return dy * w + dx


def valid_output_positions(w: int, fw: int) -> np.ndarray:
    """Slots holding valid (no padding) conv outputs, anchored top-left."""
    out_w = w - fw + 1
    ys, xs = np.meshgrid(np.arange(out_w), np.arange(out_w), indexing="ij")
    return (ys * w + xs).reshape(-1)


def conv_tap_plaintext_pa(
    weight: int, w: int, fw: int, dy: int, dx: int, row_size: int
) -> np.ndarray:
    """Sched-PA weight vector for one filter tap.

    The input ciphertext stays in original order; the tap coefficient is
    placed at the *input* slots ``s + offset`` that feed valid outputs
    ``s``, so the product lands pre-rotation and the partial is rotated
    into alignment afterwards (Figure 4).
    """
    values = np.zeros(row_size, dtype=np.int64)
    offset = tap_offset(dy, dx, w)
    for s in valid_output_positions(w, fw):
        values[s + offset] = weight
    return values


def conv_tap_plaintext_ia(
    weight: int, w: int, fw: int, dy: int, dx: int, row_size: int
) -> np.ndarray:
    """Sched-IA weight vector for one filter tap.

    The input ciphertext is rotated *first*, so the tap coefficient sits
    directly at the output slots ``s``; the rotation's wrap-around junk is
    masked by the zeros at non-output slots.
    """
    values = np.zeros(row_size, dtype=np.int64)
    for s in valid_output_positions(w, fw):
        values[s] = weight
    return values


def fc_diagonal(weights: np.ndarray, d: int, schedule_pa: bool) -> np.ndarray:
    """Generalized diagonal d of a square matrix for diagonal-method FC.

    For Sched-IA (rotate input first), slot j of the diagonal holds
    ``W[j, (j + d) mod ni]``.  For Sched-PA, the weight must multiply the
    *unrotated* input, so slot j holds ``W[(j - d) mod ni, j]``; the
    partial is then rotated left by d to align with output slots.
    """
    weights = np.asarray(weights, dtype=np.int64)
    ni = weights.shape[1]
    if weights.shape[0] != ni:
        raise ValueError("fc_diagonal expects a square (padded) matrix")
    j = np.arange(ni)
    if schedule_pa:
        return weights[(j - d) % ni, j]
    return weights[j, (j + d) % ni]


def pad_fc_weights(weights: np.ndarray) -> np.ndarray:
    """Zero-pad an (no, ni) matrix to square (ni, ni) for the diagonal method."""
    weights = np.asarray(weights, dtype=np.int64)
    no, ni = weights.shape
    if no > ni:
        raise ValueError(f"diagonal method requires no <= ni, got {weights.shape}")
    padded = np.zeros((ni, ni), dtype=np.int64)
    padded[:no, :] = weights
    return padded
