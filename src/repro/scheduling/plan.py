"""Compiled linear-layer plans: offline weights, hoisted and grouped rotations.

The naive Figure 5 loop nests (:func:`repro.scheduling.conv2d.conv2d_he_naive`,
:func:`repro.scheduling.fc.fc_he_naive`) pay three avoidable costs on every
inference.  A compiled :class:`ConvPlan` / :class:`FcPlan` removes all three
while producing bit-identical decrypted outputs:

* **Offline eval-domain weight encoding** (Section III-B, "Cheetah keeps
  polynomials in the evaluation space"): every weight plaintext of the layer
  is encoded once at compile time into a stacked ``(k, T, n)`` evaluation-
  domain array, so no NTT is ever spent on weights during inference and the
  multiply-accumulate over all T terms runs as one fused
  :meth:`~repro.bfv.scheme.BfvScheme.mul_plain_accumulate_stacked` call.
* **Hoisted, shared input rotations** (Sched-IA, Figure 5 right / Gazelle's
  hoisting): each input ciphertext is decomposed once with
  :meth:`~repro.bfv.scheme.BfvScheme.hoist`, making every subsequent rotation
  NTT-free, and the rotated inputs are computed once per distinct tap offset
  and shared across *all* output channels -- ``ci * fw^2`` key switches per
  convolution instead of the naive ``co * ci * fw^2``.
* **Rotation grouping under Sched-PA** (Figure 5 left / Cheetah's schedule):
  rotation is linear, so all partials sharing a tap offset are summed
  *before* the single rotation that aligns them -- ``fw^2`` rotations per
  output channel instead of ``ci * fw^2``.  FC layers get the analogous
  win from the Gazelle-style extended-diagonal fold: when ``ni`` has a
  power-of-two factor ``2^f`` with ``ni / 2^f >= no``, only ``ni / 2^f``
  diagonals are materialised and ``f`` rotate-and-add folds finish the
  reduction, replacing ``ni - 1`` rotations with ``ni / 2^f - 1 + f``.

Plans are weight- and parameter-bound but key-independent: compile once,
then call ``execute`` with any ciphertexts/Galois keys under the same
parameter set (the discipline :class:`~repro.protocol.gazelle.GazelleProtocol`
uses to amortise compilation across inferences).  Noise is never worse than
the naive schedule's Table III bound: Sched-PA grouping strictly reduces the
number of rotation-noise terms, and hoisted rotations carry the same additive
noise as plain ones.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..bfv.keys import GaloisKeys
from ..bfv.scheme import BfvScheme, Ciphertext, EvalPlaintext
from ..bfv.polynomial import Domain, RnsPolynomial
from ..core.noise_model import Schedule
from .conv2d import _infer_width
from .layouts import tap_offset, valid_output_positions

#: Offline-encoding NTT batch cap; bounds the engine's transient work buffers.
_ENCODE_CHUNK = 128


def encode_weight_rows(scheme: BfvScheme, rows: np.ndarray) -> np.ndarray:
    """Encode T slot-row vectors into a stacked ``(k, T, n)`` eval-domain array.

    Batched equivalent of ``encode_for_mul(encoder.encode_row(row))`` per
    row -- bit-identical output, but the slot->coefficient and
    coefficient->evaluation transforms each run over whole chunks instead
    of one polynomial at a time.  Runs offline (no op counting).
    """
    rows = np.asarray(rows, dtype=np.int64)
    chunks = []
    for start in range(0, rows.shape[0], _ENCODE_CHUNK):
        chunk = rows[start : start + _ENCODE_CHUNK]
        coeffs = scheme.encoder.encode_rows(chunk)
        chunks.append(scheme.encode_coeffs_stack_for_mul(coeffs))
    return np.concatenate(chunks, axis=1)


@dataclass
class ConvPlan:
    """A compiled valid (stride-1, dense) convolution schedule.

    Term order inside the per-output-channel weight stack is tap-major,
    input-channel-minor, so Sched-PA's offset groups are contiguous
    ``ci``-wide slices and Sched-IA's rotated-input stack is built once in
    the same order for all output channels.
    """

    scheme: BfvScheme
    schedule: Schedule
    grid_w: int
    co: int
    ci: int
    fw: int
    offsets: list[int]
    #: Stacked offline-encoded weights, shape (k, co, ci * fw^2, n).
    weight_stacks: np.ndarray = field(repr=False)

    @classmethod
    def compile(
        cls,
        scheme: BfvScheme,
        weights: np.ndarray,
        schedule: Schedule = Schedule.PARTIAL_ALIGNED,
        grid_w: int | None = None,
    ) -> "ConvPlan":
        weights = np.asarray(weights, dtype=np.int64)
        if weights.ndim != 4 or weights.shape[2] != weights.shape[3]:
            raise ValueError(f"expected (co, ci, fw, fw) filters, got {weights.shape}")
        co, ci, fw, _ = weights.shape
        row_size = scheme.params.row_size
        if grid_w is None:
            grid_w = _infer_width(row_size)
        taps = [(dy, dx) for dy in range(fw) for dx in range(fw)]
        offsets = [tap_offset(dy, dx, grid_w) for dy, dx in taps]
        positions = valid_output_positions(grid_w, fw)
        # 0/1 slot masks per tap (shifted by the tap offset under Sched-PA,
        # anchored at the output slots under Sched-IA), scaled by each
        # (oc, ic) filter coefficient via broadcasting.
        masks = np.zeros((fw * fw, row_size), dtype=np.int64)
        for ti, offset in enumerate(offsets):
            if schedule is Schedule.PARTIAL_ALIGNED:
                masks[ti, positions + offset] = 1
            else:
                masks[ti, positions] = 1
        # weights[oc, ic, dy, dx] -> (co, tap, ic) term order.
        w_terms = weights.transpose(0, 2, 3, 1).reshape(co, fw * fw, ci)
        rows = (w_terms[:, :, :, None] * masks[None, :, None, :]).reshape(
            co * fw * fw * ci, row_size
        )
        stacks = encode_weight_rows(scheme, rows)
        k, _, n = stacks.shape
        weight_stacks = stacks.reshape(k, co, fw * fw * ci, n)
        return cls.from_stacks(
            scheme,
            schedule=schedule,
            grid_w=grid_w,
            co=co,
            ci=ci,
            fw=fw,
            offsets=offsets,
            weight_stacks=weight_stacks,
        )

    @classmethod
    def from_stacks(
        cls,
        scheme: BfvScheme,
        *,
        schedule: Schedule,
        grid_w: int,
        co: int,
        ci: int,
        fw: int,
        offsets: list[int],
        weight_stacks: np.ndarray,
    ) -> "ConvPlan":
        """Rebuild a plan from already-encoded eval-domain weight stacks.

        The warm-start constructor: :meth:`compile` pays the offline NTT
        encoding exactly once and an artifact (:mod:`repro.artifacts`)
        persists the result; this path performs **zero recompute** -- no
        NTT calls, no copies (``weight_stacks`` may be a read-only
        ``np.memmap`` straight off an artifact file).  Shapes are
        validated against the scheme's parameters so a stack compiled
        under different ``(n, q)`` is rejected instead of corrupting
        outputs.
        """
        if min(co, ci, fw) < 1:
            raise ValueError(f"invalid conv geometry co={co}, ci={ci}, fw={fw}")
        if len(offsets) != fw * fw:
            raise ValueError(
                f"expected {fw * fw} tap offsets, got {len(offsets)}"
            )
        expected = (
            scheme.params.coeff_basis.count,
            co,
            fw * fw * ci,
            scheme.params.n,
        )
        weight_stacks = np.asarray(weight_stacks)
        if weight_stacks.shape != expected:
            raise ValueError(
                f"conv weight stack has shape {weight_stacks.shape}, "
                f"parameters require {expected}"
            )
        return cls(
            scheme=scheme,
            schedule=schedule,
            grid_w=int(grid_w),
            co=co,
            ci=ci,
            fw=fw,
            offsets=[int(offset) for offset in offsets],
            weight_stacks=weight_stacks,
        )

    def metadata(self) -> dict:
        """JSON-safe plan facts sufficient for :meth:`from_stacks`."""
        return {
            "kind": "conv",
            "schedule": self.schedule.value,
            "grid_w": self.grid_w,
            "co": self.co,
            "ci": self.ci,
            "fw": self.fw,
            "offsets": list(self.offsets),
        }

    @property
    def rotation_steps(self) -> list[int]:
        """Distinct Galois steps ``execute`` needs keys for."""
        return sorted({offset for offset in self.offsets if offset})

    def _resolve_oc_range(self, oc_range) -> tuple[int, int]:
        """Validate an output-channel slice request against the layer."""
        if oc_range is None:
            return 0, self.co
        start, stop = int(oc_range[0]), int(oc_range[1])
        if not 0 <= start < stop <= self.co:
            raise ValueError(
                f"oc_range {tuple(oc_range)} outside [0, {self.co}]"
            )
        return start, stop

    def execute(
        self,
        channel_cts: list[Ciphertext],
        galois_keys: GaloisKeys,
        oc_range: tuple[int, int] | None = None,
    ) -> list[Ciphertext]:
        """Run the layer: one output ciphertext per output channel.

        ``channel_cts`` holds one eval-domain ciphertext per input
        channel, each encrypting a ``grid_w x grid_w`` image packed with
        :func:`~repro.scheduling.layouts.pack_image`; ``galois_keys``
        must cover :attr:`rotation_steps`.  Output slot layout matches
        the input grid (valid positions carry the dense convolution).

        ``oc_range`` restricts execution to output channels
        ``[start, stop)`` -- each channel's output ciphertext is
        bit-identical to the corresponding entry of a full run, so a
        convolution can be partitioned across execution shards and the
        slices concatenated (the sharded serving backend's conv split).
        """
        self._resolve_oc_range(oc_range)
        if len(channel_cts) != self.ci:
            raise ValueError(
                f"expected {self.ci} channel ciphertexts, got {len(channel_cts)}"
            )
        if self.schedule is Schedule.PARTIAL_ALIGNED:
            return self._execute_pa(channel_cts, galois_keys, oc_range)
        return self._execute_ia(channel_cts, galois_keys, oc_range)

    def _execute_pa(
        self,
        channel_cts: list[Ciphertext],
        galois_keys: GaloisKeys,
        oc_range: tuple[int, int] | None = None,
    ) -> list[Ciphertext]:
        scheme = self.scheme
        ci = self.ci
        oc_start, oc_stop = self._resolve_oc_range(oc_range)
        c0 = np.stack([ct.c0.data for ct in channel_cts], axis=1)
        c1 = np.stack([ct.c1.data for ct in channel_cts], axis=1)
        outputs = []
        for oc in range(oc_start, oc_stop):
            wstack = self.weight_stacks[:, oc]
            total: Ciphertext | None = None
            for ti, offset in enumerate(self.offsets):
                group = slice(ti * ci, (ti + 1) * ci)
                partial = scheme.mul_plain_accumulate_stacked(
                    c0, c1, wstack[:, group]
                )
                if offset:
                    partial = scheme.rotate_rows(partial, offset, galois_keys)
                total = partial if total is None else scheme.add(total, partial)
            outputs.append(total)
        return outputs

    def execute_batch(
        self,
        batch_inputs: list[list[Ciphertext]],
        batch_keys: list[GaloisKeys],
        oc_range: tuple[int, int] | None = None,
    ) -> list[list[Ciphertext]]:
        """Run the layer for ``B`` independent requests in one stacked pass.

        ``batch_inputs[i]`` holds request ``i``'s per-channel ciphertexts
        and rotates under ``batch_keys[i]`` (each client has its own
        Galois keys).  The weight multiply-accumulates and key-switching
        digit NTTs for the whole batch run as single ``(k, B*T, n)``
        engine calls; request ``i`` of the result decrypts identically to
        ``execute(batch_inputs[i], batch_keys[i])``.  ``oc_range``
        restricts the computed output channels exactly as in
        :meth:`execute`.
        """
        if len(batch_inputs) != len(batch_keys):
            raise ValueError(
                f"{len(batch_inputs)} inputs but {len(batch_keys)} key sets"
            )
        for cts in batch_inputs:
            if len(cts) != self.ci:
                raise ValueError(
                    f"expected {self.ci} channel ciphertexts, got {len(cts)}"
                )
        if len(batch_inputs) == 1:
            return [self.execute(batch_inputs[0], batch_keys[0], oc_range)]
        if self.schedule is Schedule.PARTIAL_ALIGNED:
            return self._execute_batch_pa(batch_inputs, batch_keys, oc_range)
        return self._execute_batch_ia(batch_inputs, batch_keys, oc_range)

    def _execute_batch_pa(
        self,
        batch_inputs: list[list[Ciphertext]],
        batch_keys: list[GaloisKeys],
        oc_range: tuple[int, int] | None = None,
    ) -> list[list[Ciphertext]]:
        scheme = self.scheme
        ci, batch = self.ci, len(batch_inputs)
        oc_start, oc_stop = self._resolve_oc_range(oc_range)
        # (k, B, ci, n) stacks across requests and input channels.
        c0 = np.stack(
            [np.stack([ct.c0.data for ct in cts], axis=1) for cts in batch_inputs],
            axis=1,
        )
        c1 = np.stack(
            [np.stack([ct.c1.data for ct in cts], axis=1) for cts in batch_inputs],
            axis=1,
        )
        outputs: list[list[Ciphertext]] = [[] for _ in range(batch)]
        for oc in range(oc_start, oc_stop):
            wstack = self.weight_stacks[:, oc]
            totals: list[Ciphertext | None] = [None] * batch
            for ti, offset in enumerate(self.offsets):
                group = slice(ti * ci, (ti + 1) * ci)
                partials = scheme.mul_plain_accumulate_grouped(
                    c0, c1, wstack[:, group]
                )
                if offset:
                    partials = scheme.rotate_rows_batch(partials, offset, batch_keys)
                totals = [
                    p if t is None else scheme.add(t, p)
                    for t, p in zip(totals, partials)
                ]
            for i in range(batch):
                outputs[i].append(totals[i])
        return outputs

    def _execute_batch_ia(
        self,
        batch_inputs: list[list[Ciphertext]],
        batch_keys: list[GaloisKeys],
        oc_range: tuple[int, int] | None = None,
    ) -> list[list[Ciphertext]]:
        scheme = self.scheme
        ci, batch = self.ci, len(batch_inputs)
        oc_start, oc_stop = self._resolve_oc_range(oc_range)
        k, _, _, n = self.weight_stacks.shape
        terms = len(self.offsets) * ci
        # Request-major layout so each request's (k, T, n) slice is one
        # contiguous block for the per-request weight MAC below.
        rot_c0 = np.empty((batch, k, terms, n), dtype=np.int64)
        rot_c1 = np.empty((batch, k, terms, n), dtype=np.int64)
        flat_cts = [ct for cts in batch_inputs for ct in cts]
        flat_keys = [batch_keys[i] for i in range(batch) for _ in range(ci)]
        hoisted = scheme.hoist_group(flat_cts) if any(self.offsets) else None
        for ti, offset in enumerate(self.offsets):
            rotated = (
                scheme.rotate_rows_group(hoisted, offset, flat_keys)
                if offset
                else flat_cts
            )
            for i in range(batch):
                for ic in range(ci):
                    idx = ti * ci + ic
                    rot_c0[i, :, idx] = rotated[i * ci + ic].c0.data
                    rot_c1[i, :, idx] = rotated[i * ci + ic].c1.data
        # The weight MAC runs per request: its operands are request-local,
        # and a whole-batch (k, B, T, n) reduction would trade cache
        # locality for nothing (the weights broadcast either way).
        outputs: list[list[Ciphertext]] = [[] for _ in range(batch)]
        for oc in range(oc_start, oc_stop):
            wstack = self.weight_stacks[:, oc]
            for i in range(batch):
                outputs[i].append(
                    scheme.mul_plain_accumulate_stacked(
                        rot_c0[i], rot_c1[i], wstack
                    )
                )
        return outputs

    def _execute_ia(
        self,
        channel_cts: list[Ciphertext],
        galois_keys: GaloisKeys,
        oc_range: tuple[int, int] | None = None,
    ) -> list[Ciphertext]:
        scheme = self.scheme
        oc_start, oc_stop = self._resolve_oc_range(oc_range)
        k, _, _, n = self.weight_stacks.shape
        terms = len(self.offsets) * self.ci
        rot_c0 = np.empty((k, terms, n), dtype=np.int64)
        rot_c1 = np.empty((k, terms, n), dtype=np.int64)
        # Hoist each input once; rotate once per distinct offset, shared
        # across every output channel.  A 1x1 convolution rotates nothing,
        # so skip the (NTT-paying) hoist entirely.
        hoisted = (
            [scheme.hoist(ct) for ct in channel_cts] if any(self.offsets) else None
        )
        for ti, offset in enumerate(self.offsets):
            for ic in range(self.ci):
                if offset:
                    rotated = scheme.rotate_rows_hoisted(
                        hoisted[ic], offset, galois_keys
                    )
                else:
                    rotated = channel_cts[ic]
                idx = ti * self.ci + ic
                rot_c0[:, idx] = rotated.c0.data
                rot_c1[:, idx] = rotated.c1.data
        return [
            scheme.mul_plain_accumulate_stacked(
                rot_c0, rot_c1, self.weight_stacks[:, oc]
            )
            for oc in range(oc_start, oc_stop)
        ]


@dataclass
class FcPlan:
    """A compiled diagonal-method FC schedule with extended-diagonal folding.

    ``no_eff = ni / 2^fold_depth`` extended diagonals (rows of the weight
    matrix reused cyclically mod ``no_eff``) are multiplied and aligned,
    then ``fold_depth`` rotate-and-add steps collapse the ``2^fold_depth``
    groups so outputs land in slots ``0..no-1``, exactly as in the plain
    diagonal method.
    """

    scheme: BfvScheme
    schedule: Schedule
    ni: int
    no: int
    no_eff: int
    fold_steps: list[int]
    #: Stacked offline-encoded diagonals, shape (k, no_eff, n).
    weight_stacks: np.ndarray = field(repr=False)

    @classmethod
    def compile(
        cls,
        scheme: BfvScheme,
        weights: np.ndarray,
        schedule: Schedule = Schedule.PARTIAL_ALIGNED,
    ) -> "FcPlan":
        weights = np.asarray(weights, dtype=np.int64)
        no, ni = weights.shape
        if no > ni:
            raise ValueError(f"diagonal method requires no <= ni, got {weights.shape}")
        row_size = scheme.params.row_size
        if 2 * ni > row_size:
            raise ValueError(f"ni={ni} needs {2 * ni} slots, row has {row_size}")
        # Deepest fold: 2^f must divide ni and keep ni / 2^f >= no.
        fold_depth = 0
        for f in range((ni // no).bit_length() - 1, 0, -1):
            if ni % (1 << f) == 0:
                fold_depth = f
                break
        no_eff = ni >> fold_depth
        extended = np.zeros((no_eff, ni), dtype=np.int64)
        extended[:no] = weights
        s = np.arange(ni)
        rows = np.zeros((no_eff, row_size), dtype=np.int64)
        for d in range(no_eff):
            values = extended[s % no_eff, (s + d) % ni]
            if schedule is Schedule.PARTIAL_ALIGNED:
                rows[d, s + d] = values
            else:
                rows[d, s] = values
        weight_stacks = encode_weight_rows(scheme, rows)
        return cls.from_stacks(
            scheme,
            schedule=schedule,
            ni=ni,
            no=no,
            no_eff=no_eff,
            weight_stacks=weight_stacks,
        )

    @classmethod
    def from_stacks(
        cls,
        scheme: BfvScheme,
        *,
        schedule: Schedule,
        ni: int,
        no: int,
        no_eff: int,
        weight_stacks: np.ndarray,
    ) -> "FcPlan":
        """Rebuild a plan from already-encoded eval-domain diagonal stacks.

        Zero-recompute warm-start path (see :meth:`ConvPlan.from_stacks`):
        ``weight_stacks`` may be a read-only memmap; fold steps are
        rederived from ``(ni, no_eff)`` and shapes are validated against
        the scheme's parameters.
        """
        if not (0 < no <= no_eff <= ni):
            raise ValueError(
                f"invalid fc geometry ni={ni}, no={no}, no_eff={no_eff}"
            )
        if ni % no_eff or (ni // no_eff) & (ni // no_eff - 1):
            raise ValueError(
                f"fold factor ni/no_eff = {ni}/{no_eff} must be a power of two"
            )
        expected = (scheme.params.coeff_basis.count, no_eff, scheme.params.n)
        weight_stacks = np.asarray(weight_stacks)
        if weight_stacks.shape != expected:
            raise ValueError(
                f"fc weight stack has shape {weight_stacks.shape}, "
                f"parameters require {expected}"
            )
        fold_depth = (ni // no_eff).bit_length() - 1
        fold_steps = [no_eff << f for f in range(fold_depth - 1, -1, -1)]
        return cls(
            scheme=scheme,
            schedule=schedule,
            ni=int(ni),
            no=int(no),
            no_eff=int(no_eff),
            fold_steps=fold_steps,
            weight_stacks=weight_stacks,
        )

    def metadata(self) -> dict:
        """JSON-safe plan facts sufficient for :meth:`from_stacks`."""
        return {
            "kind": "fc",
            "schedule": self.schedule.value,
            "ni": self.ni,
            "no": self.no,
            "no_eff": self.no_eff,
        }

    @property
    def rotation_steps(self) -> list[int]:
        """Distinct Galois steps ``execute`` needs keys for."""
        return sorted(set(range(1, self.no_eff)) | set(self.fold_steps))

    def execute(self, ct_x: Ciphertext, galois_keys: GaloisKeys) -> Ciphertext:
        """Run the layer on a duplicated-packing input ciphertext.

        ``ct_x`` must encrypt :func:`~repro.scheduling.fc.pack_fc_input`
        output (the input vector duplicated across the row); results land
        in slots ``0..no-1`` with fold partials beyond -- callers read
        ``no`` slots and must treat the rest as undefined.
        """
        scheme = self.scheme
        basis = scheme.params.coeff_basis
        if self.schedule is Schedule.PARTIAL_ALIGNED:
            total: Ciphertext | None = None
            for d in range(self.no_eff):
                plain = EvalPlaintext(
                    RnsPolynomial(basis, self.weight_stacks[:, d], Domain.EVAL)
                )
                partial = scheme.mul_plain(ct_x, plain)
                if d:
                    partial = scheme.rotate_rows(partial, d, galois_keys)
                total = partial if total is None else scheme.add(total, partial)
        else:
            k, _, n = self.weight_stacks.shape
            rot_c0 = np.empty((k, self.no_eff, n), dtype=np.int64)
            rot_c1 = np.empty((k, self.no_eff, n), dtype=np.int64)
            hoisted = scheme.hoist(ct_x) if self.no_eff > 1 else None
            for d in range(self.no_eff):
                rotated = (
                    scheme.rotate_rows_hoisted(hoisted, d, galois_keys)
                    if d
                    else ct_x
                )
                rot_c0[:, d] = rotated.c0.data
                rot_c1[:, d] = rotated.c1.data
            total = scheme.mul_plain_accumulate_stacked(
                rot_c0, rot_c1, self.weight_stacks
            )
        # Rotation linearity again: each fold halves the number of groups
        # still spread across the row.
        for step in self.fold_steps:
            total = scheme.add(total, scheme.rotate_rows(total, step, galois_keys))
        return total

    def execute_batch(
        self, cts: list[Ciphertext], batch_keys: list[GaloisKeys]
    ) -> list[Ciphertext]:
        """Run the layer for ``B`` independent requests in one stacked pass.

        Request ``i`` rotates under ``batch_keys[i]``; every diagonal
        multiply and fold runs as one grouped ``(k, B, ., n)`` engine call
        across the batch.  Request ``i`` of the result decrypts
        identically to ``execute(cts[i], batch_keys[i])``.
        """
        if len(cts) != len(batch_keys):
            raise ValueError(f"{len(cts)} inputs but {len(batch_keys)} key sets")
        if len(cts) == 1:
            return [self.execute(cts[0], batch_keys[0])]
        scheme = self.scheme
        batch = len(cts)
        k, _, n = self.weight_stacks.shape
        if self.schedule is Schedule.PARTIAL_ALIGNED:
            c0 = np.stack([ct.c0.data for ct in cts], axis=1)[:, :, None, :]
            c1 = np.stack([ct.c1.data for ct in cts], axis=1)[:, :, None, :]
            totals: list[Ciphertext | None] = [None] * batch
            for d in range(self.no_eff):
                partials = scheme.mul_plain_accumulate_grouped(
                    c0, c1, self.weight_stacks[:, d : d + 1]
                )
                if d:
                    partials = scheme.rotate_rows_batch(partials, d, batch_keys)
                totals = [
                    p if t is None else scheme.add(t, p)
                    for t, p in zip(totals, partials)
                ]
        else:
            # Request-major so each request's MAC reads contiguous blocks.
            rot_c0 = np.empty((batch, k, self.no_eff, n), dtype=np.int64)
            rot_c1 = np.empty((batch, k, self.no_eff, n), dtype=np.int64)
            hoisted = scheme.hoist_group(cts) if self.no_eff > 1 else None
            for d in range(self.no_eff):
                rotated = (
                    scheme.rotate_rows_group(hoisted, d, batch_keys)
                    if d
                    else cts
                )
                for i in range(batch):
                    rot_c0[i, :, d] = rotated[i].c0.data
                    rot_c1[i, :, d] = rotated[i].c1.data
            totals = [
                scheme.mul_plain_accumulate_stacked(
                    rot_c0[i], rot_c1[i], self.weight_stacks
                )
                for i in range(batch)
            ]
        for step in self.fold_steps:
            rotated = scheme.rotate_rows_batch(totals, step, batch_keys)
            totals = [scheme.add(t, r) for t, r in zip(totals, rotated)]
        return list(totals)


def compile_linear_plan(scheme, layer, weights, schedule, grid_w=None):
    """Compile the right plan for an ``nn.layers`` linear layer descriptor."""
    from ..nn.layers import ConvLayer

    if isinstance(layer, ConvLayer):
        return ConvPlan.compile(scheme, weights, schedule, grid_w=grid_w)
    return FcPlan.compile(scheme, weights, schedule)


#: Per-scheme compiled-plan cache (attached to the scheme so lifetime and
#: identity follow it); bounds memory for long-lived schemes.
_PLAN_CACHE_ATTR = "_linear_plan_cache"
_PLAN_CACHE_MAX = 32


def _cached_plan(scheme: BfvScheme, key: tuple, factory):
    cache: OrderedDict | None = getattr(scheme, _PLAN_CACHE_ATTR, None)
    if cache is None:
        cache = OrderedDict()
        setattr(scheme, _PLAN_CACHE_ATTR, cache)
    plan = cache.get(key)
    if plan is None:
        plan = factory()
        cache[key] = plan
        if len(cache) > _PLAN_CACHE_MAX:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return plan


def cached_conv_plan(
    scheme: BfvScheme,
    weights: np.ndarray,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
    grid_w: int | None = None,
) -> ConvPlan:
    """Memoized :meth:`ConvPlan.compile`, keyed by weight bytes.

    Lets per-call entry points (``conv2d_he``, ``conv2d_he_small`` loops)
    amortise the offline weight encoding across repeated invocations with
    the same weights without holding a plan handle themselves.
    """
    weights = np.asarray(weights, dtype=np.int64)
    key = ("conv", schedule, grid_w, weights.shape, weights.tobytes())
    return _cached_plan(
        scheme, key, lambda: ConvPlan.compile(scheme, weights, schedule, grid_w=grid_w)
    )


def cached_fc_plan(
    scheme: BfvScheme,
    weights: np.ndarray,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
) -> FcPlan:
    """Memoized :meth:`FcPlan.compile`, keyed by weight bytes."""
    weights = np.asarray(weights, dtype=np.int64)
    key = ("fc", schedule, weights.shape, weights.tobytes())
    return _cached_plan(scheme, key, lambda: FcPlan.compile(scheme, weights, schedule))
