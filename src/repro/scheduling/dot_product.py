"""The two dot-product schedules of Figure 5, on live ciphertexts.

* :func:`partial_aligned_term` (Sched-PA, Cheetah): multiply the original
  ciphertext by an aligned weight plaintext, then rotate the partial.
  Noise grows as ``eta_M * v0 + eta_A``.
* :func:`input_aligned_term` (Sched-IA, Gazelle/prior art): rotate the
  input first, then multiply.  Noise grows as ``eta_M * (v0 + eta_A)``.

Both produce identical plaintext results; the difference is measurable
with :func:`repro.bfv.noise.invariant_noise_budget`, which is exactly the
experiment :mod:`benchmarks.bench_ablation_schedule` runs.
"""

from __future__ import annotations

import numpy as np

from ..bfv.encoder import Plaintext
from ..bfv.keys import GaloisKeys
from ..bfv.scheme import BfvScheme, Ciphertext


def encode_row_plaintext(scheme: BfvScheme, values: np.ndarray) -> Plaintext:
    """Encode a row-sized weight vector into a full plaintext."""
    return scheme.encoder.encode_row(values, row=0)


def partial_aligned_term(
    scheme: BfvScheme,
    ct: Ciphertext,
    weights: np.ndarray,
    rotation: int,
    galois_keys: GaloisKeys,
) -> Ciphertext:
    """One Sched-PA partial: HE_Mult first, HE_Rotate the partial after."""
    plain = scheme.encode_for_mul(encode_row_plaintext(scheme, weights))
    partial = scheme.mul_plain(ct, plain)
    return scheme.rotate_rows(partial, rotation, galois_keys)


def input_aligned_term(
    scheme: BfvScheme,
    ct: Ciphertext,
    weights: np.ndarray,
    rotation: int,
    galois_keys: GaloisKeys,
) -> Ciphertext:
    """One Sched-IA partial: HE_Rotate the input first, then HE_Mult."""
    rotated = scheme.rotate_rows(ct, rotation, galois_keys)
    plain = scheme.encode_for_mul(encode_row_plaintext(scheme, weights))
    return scheme.mul_plain(rotated, plain)


def accumulate(scheme: BfvScheme, terms: list[Ciphertext]) -> Ciphertext:
    """Reduce partials with HE_Add."""
    if not terms:
        raise ValueError("nothing to accumulate")
    total = terms[0]
    for term in terms[1:]:
        total = scheme.add(total, term)
    return total
