"""Homomorphic 2D convolution under Sched-PA and Sched-IA (Section V-B).

One ciphertext per input channel (image packed row-major into a batching
row), one output ciphertext per output channel with valid-convolution
results anchored at the top-left slots.  FC layers follow precisely the
same structure (:mod:`repro.scheduling.fc`) since both are dot products.
"""

from __future__ import annotations

import numpy as np

from ..bfv.keys import GaloisKeys, PublicKey, SecretKey
from ..bfv.scheme import BfvScheme, Ciphertext
from ..core.noise_model import Schedule
from .dot_product import (
    accumulate,
    input_aligned_term,
    partial_aligned_term,
)
from .layouts import (
    conv_tap_plaintext_ia,
    conv_tap_plaintext_pa,
    pack_image,
    tap_offset,
    unpack_image,
)


def conv_rotation_steps(w: int, fw: int) -> list[int]:
    """All distinct rotation steps a (w, fw) convolution needs."""
    steps = set()
    for dy in range(fw):
        for dx in range(fw):
            offset = tap_offset(dy, dx, w)
            if offset:
                steps.add(offset)
    return sorted(steps)


def encrypt_channels(
    scheme: BfvScheme, activations: np.ndarray, public: PublicKey
) -> list[Ciphertext]:
    """Encrypt a (ci, w, w) activation tensor, one ciphertext per channel."""
    return [
        scheme.encrypt(scheme.encoder.encode_row(pack_image(channel)), public)
        for channel in activations
    ]


def conv2d_he(
    scheme: BfvScheme,
    channel_cts: list[Ciphertext],
    weights: np.ndarray,
    galois_keys: GaloisKeys,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
) -> list[Ciphertext]:
    """Valid (no padding, stride 1) homomorphic convolution via a compiled plan.

    Resolves a :class:`repro.scheduling.plan.ConvPlan` for the weights
    (memoized per scheme, so repeated calls with the same weights pay the
    offline encoding once; weight encoding is offline by the repo's
    op-census convention and never counted, same as the naive path) and
    executes it.  Callers orchestrating many layers should compile plans
    explicitly, as :class:`~repro.protocol.gazelle.GazelleProtocol` does.
    The original loop nest survives as :func:`conv2d_he_naive`, the
    bit-exact reference the plan is cross-checked against.
    """
    from .plan import cached_conv_plan  # local import: plan builds on this module

    plan = cached_conv_plan(scheme, weights, schedule)
    return plan.execute(channel_cts, galois_keys)


def conv2d_he_naive(
    scheme: BfvScheme,
    channel_cts: list[Ciphertext],
    weights: np.ndarray,
    galois_keys: GaloisKeys,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
) -> list[Ciphertext]:
    """Reference loop nest for the Figure 5 schedules (one HE op per tap).

    Re-encodes every weight plaintext online and rotates once per
    ``(oc, ic, tap)`` partial -- exactly the operation census Table IV
    models -- so it stays the oracle for op-count and noise-model
    validation while :func:`conv2d_he` runs the compiled fast path.

    Parameters
    ----------
    channel_cts:
        One ciphertext per input channel; channel images are w x w,
        inferred from the weight shape and the first usable output.
    weights:
        Integer filters of shape (co, ci, fw, fw).
    """
    weights = np.asarray(weights, dtype=np.int64)
    co, ci, fw, _ = weights.shape
    if len(channel_cts) != ci:
        raise ValueError(f"expected {ci} channel ciphertexts, got {len(channel_cts)}")
    row_size = scheme.params.row_size
    w = _infer_width(row_size)
    outputs = []
    for oc in range(co):
        partials = []
        for ic in range(ci):
            for dy in range(fw):
                for dx in range(fw):
                    weight = int(weights[oc, ic, dy, dx])
                    offset = tap_offset(dy, dx, w)
                    if schedule is Schedule.PARTIAL_ALIGNED:
                        tap_weights = conv_tap_plaintext_pa(
                            weight, w, fw, dy, dx, row_size
                        )
                        # Rotating left by `offset` aligns slot s+offset
                        # back onto output slot s.
                        partials.append(
                            partial_aligned_term(
                                scheme, channel_cts[ic], tap_weights, offset, galois_keys
                            )
                        )
                    else:
                        tap_weights = conv_tap_plaintext_ia(
                            weight, w, fw, dy, dx, row_size
                        )
                        partials.append(
                            input_aligned_term(
                                scheme, channel_cts[ic], tap_weights, offset, galois_keys
                            )
                        )
        outputs.append(accumulate(scheme, partials))
    return outputs


def _infer_width(row_size: int) -> int:
    """Largest square image fitting one batching row.

    Callers pack one w x w channel per row; the convolution addresses
    slots up to (w - 1) * w + (w - 1) + max offset, which stays within the
    row because offsets only reach valid outputs.
    """
    w = int(np.sqrt(row_size))
    while w * w > row_size:
        w -= 1
    return w


def conv2d_he_small(
    scheme: BfvScheme,
    activations: np.ndarray,
    weights: np.ndarray,
    public: PublicKey,
    secret: SecretKey,
    galois_keys: GaloisKeys,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Encrypt -> convolve -> decrypt helper for (ci, w, w) inputs.

    Returns the (co, out_w, out_w) integer output tensor.  Padding is
    applied client-side before packing (zeros around the image); strides
    are lowered by computing the dense (stride-1) convolution and
    selecting every stride-th output slot, which is how Gazelle lowers
    strided layers onto slot-aligned kernels.
    """
    activations = np.asarray(activations, dtype=np.int64)
    if stride < 1 or padding < 0:
        raise ValueError("stride must be >= 1 and padding >= 0")
    if padding:
        activations = np.pad(
            activations, ((0, 0), (padding, padding), (padding, padding))
        )
    ci, w, _ = activations.shape
    co = weights.shape[0]
    fw = weights.shape[2]
    if w * w > scheme.params.row_size:
        raise ValueError(
            f"{w}x{w} image does not fit a batching row of {scheme.params.row_size}"
        )
    # Re-pack each channel into the row-width grid the scheduler assumes.
    grid_w = _infer_width(scheme.params.row_size)
    channels = np.zeros((ci, grid_w, grid_w), dtype=np.int64)
    channels[:, :w, :w] = activations
    cts = encrypt_channels(scheme, channels, public)
    out_cts = conv2d_he(scheme, cts, weights, galois_keys, schedule)
    dense_w = w - fw + 1
    out_w = (dense_w - 1) // stride + 1
    outputs = np.zeros((co, out_w, out_w), dtype=np.int64)
    for oc, ct in enumerate(out_cts):
        slots = scheme.encoder.decode_row(scheme.decrypt(ct, secret))
        grid = unpack_image(slots, grid_w)
        outputs[oc] = grid[:dense_w:stride, :dense_w:stride]
    return outputs
