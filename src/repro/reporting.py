"""Machine-readable experiment results (JSON export).

Collects the headline numbers of every reproduced experiment into one
JSON-serializable structure so downstream tooling (plotting, CI
regression tracking) can consume the reproduction without parsing bench
stdout.  Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import json
from typing import Any

from .accel import accelerator_dse
from .core.baselines import FleetSummary, speedup_report
from .nn.models import MODEL_BUILDERS, build_model
from .profiling import (
    PAPER_BATCHES,
    PAPER_NS,
    gpu_ntt_speedup,
    limit_study,
    network_profile,
)


def figure6_results(model_names: list[str] | None = None) -> dict[str, Any]:
    """Per-model speedups and harmonic means (Figure 6)."""
    names = model_names or list(MODEL_BUILDERS)
    reports = [speedup_report(build_model(name)) for name in names]
    summary = FleetSummary(reports)
    payload = {
        "per_model": {
            r.network.name: {
                "ptune_speedup": r.ptune_speedup,
                "sched_pa_speedup": r.sched_pa_speedup,
                "combined_speedup": r.cheetah_speedup,
            }
            for r in reports
        }
    }
    if len(reports) > 1:
        payload["harmonic_means"] = {
            "ptune": summary.ptune_harmonic_mean(),
            "sched_pa": summary.sched_pa_harmonic_mean(),
            "combined": summary.combined_harmonic_mean(),
        }
    return payload


def figure7_results(model_name: str = "ResNet50") -> dict[str, Any]:
    """Kernel breakdown and limit study (Figure 7)."""
    from .core.baselines import cheetah_configuration

    tuned = cheetah_configuration(build_model(model_name)).tuned_layers
    profile = network_profile(tuned)
    study = limit_study(profile, total_seconds=970.0, target_seconds=0.1)
    return {
        "kernel_fractions": profile.fractions(),
        "speedups_needed": study.speedups,
        "final_latency_ms": study.final_seconds * 1e3,
    }


def figure8_results() -> dict[str, Any]:
    """GPU NTT speedup grid (Figure 8)."""
    return {
        f"n={n}": {str(batch): gpu_ntt_speedup(batch, n) for batch in PAPER_BATCHES}
        for n in PAPER_NS
    }


def figure11_results(model_name: str = "ResNet50", target_s: float = 0.1) -> dict[str, Any]:
    """Accelerator DSE Pareto and the selected design (Figure 11)."""
    from .core.baselines import cheetah_configuration

    tuned = cheetah_configuration(build_model(model_name)).tuned_layers
    dse = accelerator_dse(tuned)
    selected = dse.select_for_latency(target_s)
    return {
        "pareto": [
            {
                "pes": r.config.num_pes,
                "lanes": r.config.lanes_per_pe,
                "latency_ms": r.latency_ms,
                "power_w_5nm": r.power_w_5nm,
                "area_mm2_5nm": r.area_mm2_5nm,
            }
            for r in dse.pareto
        ],
        "selected": {
            "pes": selected.config.num_pes,
            "lanes": selected.config.lanes_per_pe,
            "latency_ms": selected.latency_ms,
            "power_w_5nm": selected.power_w_5nm,
            "area_mm2_5nm": selected.area_mm2_5nm,
            "io_utilization": selected.io_utilization,
            "area_breakdown_5nm": selected.area_breakdown_5nm(),
        },
    }


def collect_results(models: list[str] | None = None) -> dict[str, Any]:
    """Everything, keyed by experiment id.

    The profile and accelerator sections use the paper's flagship model
    (ResNet50) unless a model list narrows the scope, in which case the
    last listed model (the largest by convention) is profiled.
    """
    flagship = models[-1] if models else "ResNet50"
    return {
        "figure6_speedups": figure6_results(models),
        "figure7_profile": figure7_results(flagship),
        "figure8_gpu_ntt": figure8_results(),
        "figure11_accelerator": figure11_results(flagship),
    }


def write_report(path: str, models: list[str] | None = None) -> dict[str, Any]:
    """Collect and write the JSON report; returns the payload."""
    payload = collect_results(models)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return payload
