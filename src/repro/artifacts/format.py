"""The ``.rpa`` container: versioned, integrity-hashed, memmap-friendly.

A repro artifact is one file holding a small JSON header plus raw
little-endian int64 array sections, laid out so the sections can be
``np.memmap``'d read-only straight off disk:

.. code-block:: text

    b"RPAF" | u32 version | 32-byte header SHA-256 | u32 header length |
    header JSON | zero pad | section 0 | zero pad | section 1 | ...

* The **header** records, per section, a name, an offset *relative to the
  data area*, a shape, a dtype, and a SHA-256 digest.  Keeping offsets
  relative means the header's own length never feeds back into the
  offsets it describes (no fixed-point layout pass).
* The **data area** starts at the first :data:`SECTION_ALIGN` boundary
  after the header and every section offset is :data:`SECTION_ALIGN`
  aligned, so each mapped array is page-aligned: ``N`` server processes
  mapping one artifact share its weight pages through the OS page cache
  instead of each holding a private copy.
* **Integrity is checked before anything is trusted**: the magic and
  version gate parsing, a SHA-256 digest covers the header bytes, and
  each section carries both a CRC-32 checksum and a SHA-256 digest.  The
  default load verifies every section's CRC-32 (~4 GB/s -- catches
  truncation and bit flips without giving back the warm start it exists
  for); ``verify="full"`` additionally checks the SHA-256 digests for
  audit-grade verification.  A truncated, bit-flipped, or version-skewed
  file raises :class:`ArtifactError` with a specific reason instead of
  handing corrupt residues to the NTT engine.

This extends the :mod:`repro.bfv.serialize` conventions (JSON header +
validated little-endian int64 bodies) to file scale; the wire format
stays copy-based because ciphertexts are transient, while artifacts are
long-lived and read-shared.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from pathlib import Path

import numpy as np

MAGIC = b"RPAF"

#: Bump on any incompatible layout or header-schema change.
FORMAT_VERSION = 1

#: Section (and data-area) alignment; one page on every deployment target.
SECTION_ALIGN = 4096

_PREFIX = struct.Struct("<4sI32sI")  # magic, version, header sha256, header len


class ArtifactError(ValueError):
    """A malformed, corrupted, or incompatible artifact file."""


def _align(offset: int) -> int:
    return (offset + SECTION_ALIGN - 1) // SECTION_ALIGN * SECTION_ALIGN


def write_container(path, header: dict, arrays: dict[str, np.ndarray]) -> int:
    """Write ``arrays`` plus a described ``header`` as one ``.rpa`` file.

    ``header`` must be JSON-safe; the section table and format version are
    added here.  Returns the total file size in bytes.
    """
    sections = []
    payload: list[np.ndarray] = []
    rel = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array, dtype="<i8")
        sections.append(
            {
                "name": str(name),
                "offset": rel,
                "shape": [int(dim) for dim in array.shape],
                "dtype": "<i8",
                "crc32": zlib.crc32(array),
                "sha256": hashlib.sha256(array).hexdigest(),
            }
        )
        payload.append(array)
        rel = _align(rel + array.nbytes)

    full_header = dict(header)
    full_header["format_version"] = FORMAT_VERSION
    full_header["sections"] = sections
    header_bytes = json.dumps(full_header, sort_keys=True).encode()
    data_start = _align(_PREFIX.size + len(header_bytes))

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Write to a sibling temp file and rename into place: recompiling an
    # artifact that live servers have memmapped must not truncate the
    # inode under them (SIGBUS on their next page fault), and a crash
    # mid-write must not leave a corrupt file at the final path.
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(
                _PREFIX.pack(
                    MAGIC,
                    FORMAT_VERSION,
                    hashlib.sha256(header_bytes).digest(),
                    len(header_bytes),
                )
            )
            handle.write(header_bytes)
            handle.write(b"\0" * (data_start - _PREFIX.size - len(header_bytes)))
            position = 0
            for section, array in zip(sections, payload):
                handle.write(b"\0" * (section["offset"] - position))
                # tofile streams the buffer directly -- no tobytes() copy
                # of a potentially large weight section.
                array.tofile(handle)
                position = section["offset"] + array.nbytes
            size = handle.tell()
        os.replace(tmp_path, path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    return size


def read_container(
    path, verify: bool | str = True
) -> tuple[dict, dict[str, np.ndarray]]:
    """Map an ``.rpa`` file; return ``(header, name -> int64 array view)``.

    The returned arrays are read-only views over one shared ``np.memmap``
    -- nothing is copied and no transform runs.  ``verify`` selects the
    integrity level:

    ``True`` (default)
        Check every section's CRC-32 -- catches truncation and bit flips
        at ~4 GB/s, preserving the warm-start win.
    ``"full"``
        Additionally check every section's SHA-256 digest (audit-grade).
    ``False``
        Trust the file; only the header digest and section bounds are
        checked.  For hot restart loops on files this process just wrote.

    Any other value raises -- a typo like ``verify="FULL"`` must not
    silently degrade to a weaker check than the caller asked for.
    """
    if verify not in (True, False, "full"):
        raise ValueError(
            f"verify must be True, False, or 'full', got {verify!r}"
        )
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    if size < _PREFIX.size:
        raise ArtifactError(
            f"{path.name}: {size} bytes is too short for an artifact prefix"
        )
    with open(path, "rb") as handle:
        prefix = handle.read(_PREFIX.size)
    magic, version, header_digest, header_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ArtifactError(f"{path.name}: not a repro model artifact")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"{path.name}: artifact format version {version}, "
            f"this build reads version {FORMAT_VERSION}"
        )
    if _PREFIX.size + header_len > size:
        raise ArtifactError(
            f"{path.name}: truncated artifact (header claims {header_len} "
            f"bytes, {size - _PREFIX.size} available)"
        )

    mapped = np.memmap(path, dtype=np.uint8, mode="r")
    header_view = mapped[_PREFIX.size : _PREFIX.size + header_len]
    if hashlib.sha256(header_view).digest() != header_digest:
        raise ArtifactError(f"{path.name}: artifact header corrupted")
    try:
        header = json.loads(bytes(header_view).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"{path.name}: malformed artifact header: {exc}") from exc
    if not isinstance(header, dict) or "sections" not in header:
        raise ArtifactError(f"{path.name}: artifact header missing section table")

    data_start = _align(_PREFIX.size + header_len)
    arrays: dict[str, np.ndarray] = {}
    for section in header["sections"]:
        name = str(section["name"])
        shape = tuple(int(dim) for dim in section["shape"])
        if section.get("dtype") != "<i8":
            raise ArtifactError(
                f"{path.name}: section {name!r} has unsupported dtype "
                f"{section.get('dtype')!r}"
            )
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        start = data_start + int(section["offset"])
        end = start + count * 8
        if int(section["offset"]) % 8 or start < data_start or end > size:
            raise ArtifactError(
                f"{path.name}: truncated artifact (section {name!r} spans "
                f"bytes {start}..{end} of a {size}-byte file)"
            )
        view = mapped[start:end]
        if verify:
            if zlib.crc32(view) != int(section.get("crc32", -1)):
                raise ArtifactError(
                    f"{path.name}: section {name!r} corrupted (CRC-32 mismatch)"
                )
            if verify == "full" and (
                hashlib.sha256(view).hexdigest() != section.get("sha256")
            ):
                raise ArtifactError(
                    f"{path.name}: section {name!r} corrupted (SHA-256 mismatch)"
                )
        arrays[name] = view.view("<i8").reshape(shape)
    return header, arrays
