"""Save and load fully compiled models as ``.rpa`` artifacts.

Cheetah's discipline is to pay HE cost offline so the online path is
bare: plans compile once and execute many times, and one server compile
is amortised across every session.  This module extends the amortisation
across *process lifetimes*: :func:`save_artifact` persists everything a
compiled :class:`~repro.serving.registry.ModelEntry` derived from the
weights -- the eval-domain weight stacks, per-layer plan metadata, the
rotation-step union, the network description, and a parameter
fingerprint -- and :func:`load_artifact` brings it back with **zero
recompute**: the weight stacks are read-only memmap views (no NTT calls,
no copies) and plans are rebuilt from metadata alone via
``ConvPlan.from_stacks`` / ``FcPlan.from_stacks``.

A fleet of server processes pointed at one artifact therefore
warm-starts in milliseconds and shares the weight pages through the OS
page cache instead of each process re-encoding and privately holding
every weight plaintext.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..bfv.params import BfvParameters
from ..bfv.serialize import params_from_dict, params_to_dict
from ..core.noise_model import Schedule
from ..nn.models import Network, network_from_dict, network_to_dict
from ..scheduling.plan import ConvPlan, FcPlan
from .format import ArtifactError, read_container, write_container

#: Conventional file suffix for repro model artifacts.
ARTIFACT_SUFFIX = ".rpa"

_KIND = "repro-model-artifact"


@dataclass
class ModelArtifact:
    """A compiled model as loaded from (or destined for) an ``.rpa`` file.

    ``stacks`` holds one eval-domain weight array per linear layer --
    read-only memmap views when the artifact came from
    :func:`load_artifact`.  :meth:`build_plans` turns the metadata +
    stacks into executable plans without recomputing anything.
    """

    name: str
    network: Network
    params: BfvParameters
    schedule: Schedule
    rescale_bits: int
    rotation_steps: list[int]
    layer_meta: dict[str, dict]
    stacks: dict[str, np.ndarray] = field(repr=False)
    tuned: dict | None = None
    path: Path | None = None

    def build_plans(self, scheme) -> dict:
        """Reconstruct executable plans from metadata + stacks (no NTTs)."""
        plans: dict = {}
        for layer in self.network.linear_layers:
            meta = self.layer_meta[layer.name]
            stack = self.stacks[layer.name]
            schedule = Schedule(meta["schedule"])
            if meta["kind"] == "conv":
                plans[layer.name] = ConvPlan.from_stacks(
                    scheme,
                    schedule=schedule,
                    grid_w=int(meta["grid_w"]),
                    co=int(meta["co"]),
                    ci=int(meta["ci"]),
                    fw=int(meta["fw"]),
                    offsets=[int(offset) for offset in meta["offsets"]],
                    weight_stacks=stack,
                )
            else:
                plans[layer.name] = FcPlan.from_stacks(
                    scheme,
                    schedule=schedule,
                    ni=int(meta["ni"]),
                    no=int(meta["no"]),
                    no_eff=int(meta["no_eff"]),
                    weight_stacks=stack,
                )
        return plans


def save_artifact(entry, path, tuned: dict | None = None) -> Path:
    """Serialise a compiled registry entry to ``path`` (an ``.rpa`` file).

    ``entry`` is a :class:`~repro.serving.registry.ModelEntry` (anything
    with ``name/network/params/schedule/rescale_bits/plans/
    rotation_steps``).  ``tuned`` optionally stamps the HE-PTune
    parameter record the deployment was tuned with, so the artifact (and
    any zoo manifest built from it) documents exactly the
    ``(n, q, w_dcmp, schedule)`` it was compiled for.
    """
    header = {
        "kind": _KIND,
        "model": {
            "name": entry.name,
            "schedule": entry.schedule.value,
            "rescale_bits": int(entry.rescale_bits),
        },
        "params": params_to_dict(entry.params),
        "network": network_to_dict(entry.network),
        "rotation_steps": [int(step) for step in entry.rotation_steps],
        "layers": {
            name: plan.metadata() for name, plan in entry.plans.items()
        },
    }
    if tuned is not None:
        header["tuned"] = tuned
    arrays = {name: plan.weight_stacks for name, plan in entry.plans.items()}
    path = Path(path)
    write_container(path, header, arrays)
    return path


def load_artifact(
    path, params: BfvParameters | None = None, verify: bool | str = True
) -> ModelArtifact:
    """Load an ``.rpa`` artifact with zero recompute.

    The weight stacks come back as read-only memmap views; no NTT runs
    and nothing is copied.  When ``params`` is given, the artifact's
    parameter fingerprint must match it field-for-field (plans are
    parameter-bound), otherwise the parameters are reconstructed from the
    fingerprint.  Integrity failures and mismatches raise
    :class:`~repro.artifacts.format.ArtifactError` with a reason.
    """
    path = Path(path)
    header, arrays = read_container(path, verify=verify)
    if header.get("kind") != _KIND:
        raise ArtifactError(
            f"{path.name}: expected a {_KIND}, got {header.get('kind')!r}"
        )
    stored_params = header.get("params")
    if not isinstance(stored_params, dict):
        raise ArtifactError(f"{path.name}: artifact missing parameter fingerprint")
    if params is not None:
        expected = params_to_dict(params)
        for key, value in expected.items():
            if stored_params.get(key) != value:
                raise ArtifactError(
                    f"{path.name}: artifact was compiled for different "
                    f"parameters (mismatch on {key!r}: artifact has "
                    f"{stored_params.get(key)}, expected {value})"
                )
    else:
        params = params_from_dict(stored_params)

    network = network_from_dict(header["network"])
    layer_meta = {
        str(name): dict(meta) for name, meta in header.get("layers", {}).items()
    }
    linear_names = {layer.name for layer in network.linear_layers}
    if set(layer_meta) != linear_names:
        raise ArtifactError(
            f"{path.name}: plan metadata covers {sorted(layer_meta)}, "
            f"network has linear layers {sorted(linear_names)}"
        )
    missing = linear_names - set(arrays)
    if missing:
        raise ArtifactError(
            f"{path.name}: missing weight section(s) {sorted(missing)}"
        )
    schedule = Schedule(header["model"]["schedule"])
    return ModelArtifact(
        name=str(header["model"]["name"]),
        network=network,
        params=params,
        schedule=schedule,
        rescale_bits=int(header["model"]["rescale_bits"]),
        rotation_steps=[int(step) for step in header.get("rotation_steps", [])],
        layer_meta=layer_meta,
        stacks={name: arrays[name] for name in linear_names},
        tuned=header.get("tuned"),
        path=path,
    )
