"""The artifact model zoo: a directory of ``.rpa`` files + one manifest.

A deployment is a directory of compiled model artifacts.  The optional
``manifest.json`` is the deployment record: one entry per model naming
the artifact file, its parameter fingerprint, schedule, and (when the
deployment was tuned with :mod:`repro.core.ptune`) the tuned-parameter
stamp, so operations can answer "exactly what was this fleet compiled
for?" without opening the binaries.

:func:`load_zoo` turns such a directory into a populated
:class:`~repro.serving.registry.ModelRegistry` -- one multi-model server
warm-started from disk with zero plan recompilation.

Manifests are *versioned*: every :func:`update_manifest` call bumps a
monotonic ``generation`` counter, so a running server can answer "is the
zoo on disk newer than what I serve?" with one integer compare
(:func:`manifest_generation`) and reload only when it is.
:func:`diff_manifests` names exactly which models an upgrade would add,
remove, or change -- the unit of work for
:meth:`~repro.serving.registry.ModelRegistry.reload_zoo` and
:meth:`~repro.serving.shards.ShardPool.rolling_upgrade`.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from ..bfv.serialize import params_to_dict
from .format import ArtifactError
from .store import ARTIFACT_SUFFIX, load_artifact

MANIFEST_NAME = "manifest.json"

_MANIFEST_KIND = "repro-artifact-zoo"


def manifest_entry(model, file_name: str, tuned: dict | None = None) -> dict:
    """The deployment-record line for one artifact.

    ``model`` is anything carrying ``name/params/schedule/rescale_bits/
    rotation_steps`` -- a loaded :class:`ModelArtifact` or the
    :class:`~repro.serving.registry.ModelEntry` that was just compiled
    (so ``repro compile`` never re-reads the file it wrote).  ``tuned``
    defaults to the model's own stamp when it has one.
    """
    entry = {
        "name": model.name,
        "file": str(file_name),
        "params": params_to_dict(model.params),
        "schedule": model.schedule.value,
        "rescale_bits": int(model.rescale_bits),
        "rotation_steps": len(model.rotation_steps),
    }
    if tuned is None:
        tuned = getattr(model, "tuned", None)
    if tuned is not None:
        entry["tuned"] = tuned
    return entry


def manifest_generation(manifest) -> int:
    """The generation counter of a manifest (or zoo directory).

    Accepts a parsed manifest dict, a directory (read on the spot), or
    ``None``.  Manifests written before generations existed -- and
    directories without a manifest at all -- count as generation 0, so
    every versioned manifest compares newer than every unversioned one.
    """
    if manifest is None:
        return 0
    if not isinstance(manifest, dict):
        manifest = read_manifest(manifest)
        if manifest is None:
            return 0
    generation = manifest.get("generation", 0)
    try:
        generation = int(generation)
    except (TypeError, ValueError):
        raise ArtifactError(
            f"zoo manifest generation must be an integer, got {generation!r}"
        ) from None
    if generation < 0:
        raise ArtifactError(
            f"zoo manifest generation must be >= 0, got {generation}"
        )
    return generation


def diff_manifests(old, new) -> dict:
    """Model-level diff between two manifests (dicts or ``None``).

    Returns ``{"added", "removed", "changed", "unchanged"}``, each a
    sorted list of model names.  A model is *changed* when any recorded
    fact differs -- file name, parameter fingerprint, schedule, rescale
    bits, rotation-step count, or tuned stamp -- because each of those
    invalidates something a serving process derived from the entry.
    """
    old_models = {
        entry["name"]: entry
        for entry in (old or {}).get("models", [])
        if "name" in entry
    }
    new_models = {
        entry["name"]: entry
        for entry in (new or {}).get("models", [])
        if "name" in entry
    }
    added = sorted(set(new_models) - set(old_models))
    removed = sorted(set(old_models) - set(new_models))
    changed, unchanged = [], []
    for name in sorted(set(old_models) & set(new_models)):
        if old_models[name] == new_models[name]:
            unchanged.append(name)
        else:
            changed.append(name)
    return {
        "added": added,
        "removed": removed,
        "changed": changed,
        "unchanged": unchanged,
    }


def read_manifest(directory) -> dict | None:
    """Parse ``manifest.json`` in ``directory``; ``None`` when absent."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: malformed zoo manifest: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("kind") != _MANIFEST_KIND:
        raise ArtifactError(f"{path}: not a {_MANIFEST_KIND} manifest")
    return manifest


def update_manifest(
    directory, model, file_name: str, tuned: dict | None = None
) -> Path:
    """Add or replace ``model``'s entry in the directory manifest.

    Every call bumps the manifest's ``generation`` counter: the manifest
    is the deployment record, and any write to it *is* a new deployment
    generation as far as a running server is concerned.
    """
    directory = Path(directory)
    manifest = read_manifest(directory) or {"kind": _MANIFEST_KIND, "models": []}
    models = [
        entry for entry in manifest.get("models", [])
        if entry.get("name") != model.name
    ]
    models.append(manifest_entry(model, file_name, tuned=tuned))
    manifest["models"] = sorted(models, key=lambda entry: entry["name"])
    manifest["generation"] = manifest_generation(manifest) + 1
    path = directory / MANIFEST_NAME
    directory.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def zoo_files(directory) -> list[Path]:
    """The artifact files of a zoo directory, manifest order when present.

    When a manifest exists it is authoritative, but an ``.rpa`` file
    sitting in the directory *unlisted* is almost always an operator
    mistake (``repro compile`` without ``--manifest``), so it is warned
    about rather than silently skipped -- the inverse case (listed but
    missing) is an error, matching.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    on_disk = sorted(directory.glob(f"*{ARTIFACT_SUFFIX}"))
    if manifest is None:
        return on_disk
    files = []
    for entry in manifest.get("models", []):
        path = directory / str(entry.get("file", ""))
        if not path.exists():
            raise ArtifactError(
                f"manifest lists {entry.get('file')!r} for model "
                f"{entry.get('name')!r}, but the file is missing from {directory}"
            )
        files.append(path)
    unlisted = [path.name for path in on_disk if path not in files]
    if unlisted:
        warnings.warn(
            f"{directory}: artifact(s) {unlisted} are not listed in "
            f"{MANIFEST_NAME} and will not be served (compile with "
            f"--manifest, or delete them)",
            stacklevel=2,
        )
    return files


def load_zoo(directory, registry=None, verify: bool | str = True):
    """Load every artifact of a zoo directory into one registry.

    Returns the populated :class:`~repro.serving.registry.ModelRegistry`
    (a fresh one unless ``registry`` is passed).  Every model warm-starts
    through :meth:`~repro.serving.registry.ModelRegistry.register_artifact`
    -- memmapped stacks, zero plan recompilation.  Two artifacts
    declaring the same model name are an error (a zoo is a deployment
    record, not a precedence puzzle).

    The loaded registry remembers *which* deployment it serves: the zoo
    directory, the manifest generation, and the set of model names the
    zoo provided, so a later
    :meth:`~repro.serving.registry.ModelRegistry.reload_zoo` can no-op on
    a same-generation directory and remove models a new generation drops.
    """
    from ..serving.registry import ModelRegistry

    directory = Path(directory)
    files = zoo_files(directory)
    if not files:
        raise ArtifactError(f"no {ARTIFACT_SUFFIX} artifacts found in {directory}")
    if registry is None:
        registry = ModelRegistry()
    seen: dict[str, Path] = {}
    for path in files:
        artifact = load_artifact(path, verify=verify)
        if artifact.name in seen:
            raise ArtifactError(
                f"{path.name} redeclares model {artifact.name!r} "
                f"already provided by {seen[artifact.name].name}"
            )
        seen[artifact.name] = path
        registry.register_artifact(artifact)
    registry.zoo_dir = str(directory)
    registry.zoo_generation = manifest_generation(read_manifest(directory))
    registry._zoo_names = set(seen)
    return registry
