"""Ahead-of-time model artifacts: compile once, warm-start everywhere.

The subsystem that persists a fully compiled model -- eval-domain weight
stacks, plan metadata, rotation-step union, parameter fingerprint -- as
a versioned, integrity-hashed ``.rpa`` binary and loads it back with
zero recompute (stacks are ``np.memmap``'d read-only; plans rebuild from
metadata alone).  See :mod:`repro.artifacts.format` for the container,
:mod:`repro.artifacts.store` for save/load, and
:mod:`repro.artifacts.zoo` for multi-model deployment directories.
"""

from .format import ArtifactError, FORMAT_VERSION, SECTION_ALIGN
from .store import ARTIFACT_SUFFIX, ModelArtifact, load_artifact, save_artifact
from .zoo import (
    MANIFEST_NAME,
    diff_manifests,
    load_zoo,
    manifest_entry,
    manifest_generation,
    read_manifest,
    update_manifest,
    zoo_files,
)

__all__ = [
    "ArtifactError",
    "FORMAT_VERSION",
    "SECTION_ALIGN",
    "ARTIFACT_SUFFIX",
    "ModelArtifact",
    "load_artifact",
    "save_artifact",
    "MANIFEST_NAME",
    "diff_manifests",
    "load_zoo",
    "manifest_entry",
    "manifest_generation",
    "read_manifest",
    "update_manifest",
    "zoo_files",
]
