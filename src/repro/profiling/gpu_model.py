"""GPU NTT speedup model (Figure 8).

The paper benchmarks cuHE's NTT on an NVIDIA 1080-Ti and finds speedup
over the CPU saturating around 120x at batch sizes 512-1024, with 70%
warp occupancy and 85% warp execution efficiency at batch 512, limited by
(a) emulated long-integer arithmetic and (b) modular reduction branching.

Without the GPU, we model the same first-order behaviour: a launch/fill
overhead amortised with batch size, an occupancy ramp, and a hard ceiling
from instruction expansion (each 64-bit modular multiply costs >10 GPU
integer instructions).  Constants are calibrated to the paper's reported
curve: ~120x at saturation, saturation onset at batch ~512.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Peak speedup over the single-thread CPU NTT (paper: ~120x).
PEAK_SPEEDUP = 120.0

#: Batch size at which occupancy reaches half of peak.
HALF_SATURATION_BATCH = 56.0

#: Kernel launch + transfer overhead as an equivalent batch penalty.
LAUNCH_OVERHEAD_BATCH = 2.0

#: Reference vector length of the paper's sweep.
REFERENCE_N = 16384


@dataclass(frozen=True)
class GpuNttPoint:
    """One modelled point of the Figure 8 sweep."""

    batch: int
    n: int
    speedup: float
    warp_occupancy: float
    warp_execution_efficiency: float


def gpu_ntt_speedup(batch: int, n: int = REFERENCE_N) -> float:
    """Modelled GPU-over-CPU speedup for a batch of n-point NTTs.

    Larger transforms expose more intra-kernel parallelism, shifting the
    occupancy ramp earlier; the ceiling is shared because the bottleneck
    is instruction expansion, not parallelism.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    size_shift = math.sqrt(n / REFERENCE_N)
    effective = batch * size_shift
    occupancy = effective / (effective + HALF_SATURATION_BATCH)
    amortisation = batch / (batch + LAUNCH_OVERHEAD_BATCH)
    return PEAK_SPEEDUP * occupancy * amortisation


def warp_occupancy(batch: int, n: int = REFERENCE_N) -> float:
    """Modelled warp occupancy; the paper measured 70% at batch 512."""
    size_shift = math.sqrt(n / REFERENCE_N)
    effective = batch * size_shift
    return min(0.75, 0.75 * effective / (effective + HALF_SATURATION_BATCH / 2))


def warp_execution_efficiency(batch: int) -> float:
    """Modelled warp execution efficiency; paper: 85% at batch 512.

    Divergence comes from modular-reduction branches, so it is batch
    independent to first order.
    """
    del batch
    return 0.85


def sweep(batches: list[int], ns: list[int]) -> list[GpuNttPoint]:
    """Reproduce the Figure 8 grid."""
    return [
        GpuNttPoint(
            batch=batch,
            n=n,
            speedup=gpu_ntt_speedup(batch, n),
            warp_occupancy=warp_occupancy(batch, n),
            warp_execution_efficiency=warp_execution_efficiency(batch),
        )
        for n in ns
        for batch in batches
    ]


#: The paper's sweep axes.
PAPER_BATCHES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
PAPER_NS = [16384, 32768, 65536]
