"""Speedup-needed limit study (Figure 7b).

Given the per-kernel time breakdown of an HE inference and a plaintext
latency target, determine the power-of-two speedup each kernel needs so
the total reaches the target.  The paper applies speedups successively,
most expensive kernel first, and reports NTT 16384x, Rotate 8192x,
Mult 4096x, Add 4096x for ResNet50 against a 100 ms Keras baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from .profiler import KernelBreakdown


@dataclass(frozen=True)
class LimitStudyResult:
    """Required speedup per kernel and the resulting latency."""

    speedups: dict[str, int]
    final_seconds: float
    trajectory: list[tuple[str, int, float]]  # (kernel, factor, total seconds)


def limit_study(
    breakdown: KernelBreakdown,
    total_seconds: float,
    target_seconds: float,
) -> LimitStudyResult:
    """Greedy successive doubling until the target latency is met.

    Repeatedly doubles the speedup factor of whichever kernel currently
    dominates the residual run time; this reproduces the paper's
    "speedup applied successively" methodology and its power-of-two
    factors.
    """
    if target_seconds <= 0:
        raise ValueError("target latency must be positive")
    fractions = breakdown.fractions()
    # The "Other" tail (construction/destruction) scales with the kernels
    # it wraps; fold it pro rata so the study covers the full run time.
    kernel_share = 1.0 - fractions["other"]
    times = {
        kernel: fractions[kernel] / kernel_share * total_seconds
        for kernel in ("ntt", "rotate", "mult", "add")
    }
    speedups = dict.fromkeys(times, 1)
    trajectory: list[tuple[str, int, float]] = []

    def current_total() -> float:
        return sum(times[k] / speedups[k] for k in times)

    # Cap iterations defensively; each doubling halves the largest term.
    for _ in range(400):
        total = current_total()
        if total <= target_seconds:
            break
        slowest = max(times, key=lambda k: times[k] / speedups[k])
        speedups[slowest] *= 2
        trajectory.append((slowest, speedups[slowest], current_total()))
    else:
        raise RuntimeError("limit study failed to converge")
    return LimitStudyResult(
        speedups=speedups,
        final_seconds=current_total(),
        trajectory=trajectory,
    )
