"""Kernel-level profiling of HE inference (Section VI, Figure 7a).

Two complementary profiles:

* :func:`measure_unit_costs` micro-benchmarks the live BFV kernels (NTT,
  SIMD multiply, add, automorphism bookkeeping) on this machine, playing
  the role of the paper's Xeon/SEAL software profiling.
* :func:`network_profile` combines measured (or calibrated) per-op unit
  costs with HE-PTune's per-layer operation census to produce the
  fraction-of-time breakdown the paper reports: NTT 55.2%, Rotate 31.8%,
  Mult 10.3%, Add 2.2%, Other 0.5% for ResNet50.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..bfv.counters import BARRETT_INT_MULTS, HARVEY_INT_MULTS
from ..bfv.ntt_batch import get_engine
from ..bfv.modmath import generate_ntt_primes
from ..core.perf_model import layer_kernel_int_mults
from ..core.ptune import TunedLayer

#: The hot kernels of Figure 7, in the paper's display order.
KERNELS = ("ntt", "rotate", "mult", "add", "other")


@dataclass(frozen=True)
class KernelBreakdown:
    """Time (or op-weight) attributed to each hot kernel."""

    ntt: float
    rotate: float  # HE_Rotate excluding its NTTs (as in Figure 7)
    mult: float
    add: float
    other: float

    @property
    def total(self) -> float:
        return self.ntt + self.rotate + self.mult + self.add + self.other

    def fractions(self) -> dict[str, float]:
        total = self.total
        return {
            "ntt": self.ntt / total,
            "rotate": self.rotate / total,
            "mult": self.mult / total,
            "add": self.add / total,
            "other": self.other / total,
        }

    def dominant(self) -> str:
        shares = self.fractions()
        return max(shares, key=shares.get)


@dataclass(frozen=True)
class UnitCosts:
    """Seconds per primitive operation on the host CPU."""

    per_butterfly: float
    per_modmul: float
    per_modadd: float

    @property
    def per_int_mult_ntt(self) -> float:
        return self.per_butterfly / HARVEY_INT_MULTS

    @property
    def per_int_mult_simd(self) -> float:
        return self.per_modmul / BARRETT_INT_MULTS


def measure_unit_costs(n: int = 4096, repeats: int = 20) -> UnitCosts:
    """Micro-benchmark the live kernels to get per-op costs."""
    prime = generate_ntt_primes(30, n, 1)[0]
    engine = get_engine(n, (prime,))
    rng = np.random.default_rng(0)
    data = rng.integers(0, prime, n, dtype=np.int64)
    other = rng.integers(0, prime, n, dtype=np.int64)
    stack = data[None, :]

    engine.forward(stack, count_ops=False)  # warm tables and scratch
    start = time.perf_counter()
    for _ in range(repeats):
        engine.forward(stack, count_ops=False)
    ntt_seconds = (time.perf_counter() - start) / repeats
    butterflies = (n // 2) * (n.bit_length() - 1)

    start = time.perf_counter()
    for _ in range(repeats):
        _ = data * other % prime
    mul_seconds = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(repeats):
        _ = (data + other) % prime
    add_seconds = (time.perf_counter() - start) / repeats

    return UnitCosts(
        per_butterfly=ntt_seconds / butterflies,
        per_modmul=mul_seconds / n,
        per_modadd=add_seconds / n,
    )


def layer_breakdown(tuned: TunedLayer) -> KernelBreakdown:
    """Kernel weights for one tuned layer, from the analytical census."""
    kernel_mults = layer_kernel_int_mults(tuned.layer, tuned.params)
    # "Other" is construction/destruction long tail: ~0.5% of total.
    other = 0.005 * (kernel_mults.ntt + kernel_mults.rotate_other + kernel_mults.mult)
    return KernelBreakdown(
        ntt=float(kernel_mults.ntt),
        rotate=float(kernel_mults.rotate_other),
        mult=float(kernel_mults.mult),
        add=float(kernel_mults.add),
        other=other,
    )


def network_profile(tuned_layers: list[TunedLayer]) -> KernelBreakdown:
    """Whole-network kernel breakdown (the Figure 7a pie chart)."""
    totals = dict.fromkeys(KERNELS, 0.0)
    for tuned in tuned_layers:
        breakdown = layer_breakdown(tuned)
        totals["ntt"] += breakdown.ntt
        totals["rotate"] += breakdown.rotate
        totals["mult"] += breakdown.mult
        totals["add"] += breakdown.add
        totals["other"] += breakdown.other
    return KernelBreakdown(**totals)


def estimated_cpu_seconds(
    tuned_layers: list[TunedLayer], unit_costs: UnitCosts
) -> float:
    """Estimated single-thread CPU run time for the whole HE inference."""
    profile = network_profile(tuned_layers)
    simd_ints = profile.rotate + profile.mult + profile.add
    return (
        profile.ntt * unit_costs.per_int_mult_ntt
        + simd_ints * unit_costs.per_int_mult_simd
    ) * (1.0 + 0.005)
