"""Software profiling of HE inference: kernel breakdowns (Fig. 7a),
speedup-needed limit study (Fig. 7b), and the GPU NTT model (Fig. 8)."""

from .gpu_model import (
    PAPER_BATCHES,
    PAPER_NS,
    PEAK_SPEEDUP,
    GpuNttPoint,
    gpu_ntt_speedup,
    sweep,
    warp_execution_efficiency,
    warp_occupancy,
)
from .limit_study import LimitStudyResult, limit_study
from .profiler import (
    KERNELS,
    KernelBreakdown,
    UnitCosts,
    estimated_cpu_seconds,
    layer_breakdown,
    measure_unit_costs,
    network_profile,
)

__all__ = [
    "PAPER_BATCHES",
    "PAPER_NS",
    "PEAK_SPEEDUP",
    "GpuNttPoint",
    "gpu_ntt_speedup",
    "sweep",
    "warp_execution_efficiency",
    "warp_occupancy",
    "LimitStudyResult",
    "limit_study",
    "KERNELS",
    "KernelBreakdown",
    "UnitCosts",
    "estimated_cpu_seconds",
    "layer_breakdown",
    "measure_unit_costs",
    "network_profile",
]
