"""The end-to-end Cheetah framework (Figure 1).

``CheetahFramework`` wires the full pipeline together: model in ->
HE-PTune per-layer parameters (with Sched-PA) -> speedup vs the Gazelle
baseline -> software kernel profile -> accelerator design-space
exploration sized to a target latency.  This is the one-call entry point
a downstream user reaches for; each stage is also usable on its own.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..accel.dse import DseResult, accelerator_dse
from ..accel.simulator import AcceleratorReport
from ..nn.models import Network, build_model
from ..profiling.limit_study import LimitStudyResult, limit_study
from ..profiling.profiler import KernelBreakdown, network_profile
from .baselines import SpeedupReport, speedup_report
from .ptune import TunedLayer


@dataclass
class CheetahResult:
    """Everything the framework produces for one model."""

    network: Network
    speedups: SpeedupReport
    tuned_layers: list[TunedLayer]
    profile: KernelBreakdown
    limit: LimitStudyResult
    dse: DseResult
    selected_design: AcceleratorReport

    def summary(self) -> str:
        sel = self.selected_design
        return (
            f"{self.network.name}: "
            f"HE-PTune {self.speedups.ptune_speedup:.1f}x, "
            f"+Sched-PA {self.speedups.sched_pa_speedup:.1f}x, "
            f"combined {self.speedups.cheetah_speedup:.1f}x over Gazelle; "
            f"accelerator {sel.config.num_pes} PEs x {sel.config.lanes_per_pe} "
            f"lanes: {sel.latency_ms:.0f} ms, {sel.power_w_5nm:.1f} W, "
            f"{sel.area_mm2_5nm:.0f} mm^2 (5 nm)"
        )


class CheetahFramework:
    """Run the full Cheetah flow for a model (Figure 1's outer loop)."""

    def __init__(
        self,
        target_latency_s: float = 0.1,
        reference_cpu_seconds: float = 970.0,
    ):
        """
        Parameters
        ----------
        target_latency_s:
            Plaintext-equivalent latency target (the paper's 100 ms
            ResNet50 Keras baseline).
        reference_cpu_seconds:
            Software HE inference run time used for the limit study (the
            paper measured 970 s for ResNet50 on a Xeon E5-2667).
        """
        self.target_latency_s = target_latency_s
        self.reference_cpu_seconds = reference_cpu_seconds

    def run(self, network: Network | str) -> CheetahResult:
        if isinstance(network, str):
            network = build_model(network)
        speedups = speedup_report(network)
        tuned = speedups.cheetah.tuned_layers
        profile = network_profile(tuned)
        limit = limit_study(
            profile, self.reference_cpu_seconds, self.target_latency_s
        )
        dse = accelerator_dse(tuned)
        selected = dse.select_for_latency(self.target_latency_s)
        return CheetahResult(
            network=network,
            speedups=speedups,
            tuned_layers=tuned,
            profile=profile,
            limit=limit,
            dse=dse,
            selected_design=selected,
        )
