"""Decryption-failure probability analysis (Section IV-B).

The paper observes that the accumulated noise Y is an independent bounded
discrete Gaussian, so the failure probability is bounded by

    Pr(|Y| >= q / 2t) <= 2 exp(-q^2 / (4 t^2 sigma_Y^2)).

Cheetah inverts this: it picks a scaling (tail) factor ``z`` on the noise
standard deviation such that the decryption failure rate is provably
below 1e-10 -- "negligible as it is much lower than the DNN's
misclassification rate".
"""

from __future__ import annotations

import math


def failure_probability(q: int, t: int, sigma_y: float) -> float:
    """Paper's bound: Pr(|Y| >= q/2t) <= 2 exp(-q^2 / (4 t^2 sigma_Y^2))."""
    if sigma_y <= 0:
        return 0.0
    ratio = q / (2.0 * t * sigma_y)
    # 2 exp(-q^2 / (4 t^2 sigma^2)) = 2 exp(-ratio^2); guard overflow.
    exponent = -(ratio * ratio)
    if exponent < -745.0:  # below double-precision underflow
        return 0.0
    return min(1.0, 2.0 * math.exp(exponent))


def tail_factor(target_probability: float = 1e-10) -> float:
    """Multiples of sigma_Y for which the failure bound meets the target.

    Solves 2 exp(-z^2) <= p for z (the paper's scaling factor c applied to
    the variance-based noise estimates).
    """
    if not 0.0 < target_probability < 1.0:
        raise ValueError("target probability must be in (0, 1)")
    return math.sqrt(math.log(2.0 / target_probability))


def max_noise_std(q: int, t: int, target_probability: float = 1e-10) -> float:
    """Largest output-noise standard deviation meeting the failure target."""
    return q / (2.0 * t * tail_factor(target_probability))
