"""HE-PTune performance model (Table IV of the paper).

Counts the ``HE_Mult`` and ``HE_Rotate`` operations a homomorphic CNN or
FC layer needs, for every packing regime (ciphertext slots vs image /
vector sizes), then reduces everything to the paper's common currency:
**total integer multiplications**, using

* 2n modular multiplications per HE_Mult (two ciphertext polynomials),
* 2*l_ct polynomial products and (l_ct + 1) NTTs per HE_Rotate,
* 5 integer multiplications per modular multiplication (Barrett),
* n/2 * log2 n butterflies per NTT, 3 integer mults each (Harvey).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..bfv.counters import BARRETT_INT_MULTS, HARVEY_INT_MULTS
from ..bfv.params import BfvParameters
from ..nn.layers import ConvLayer, FCLayer, LinearLayer


@dataclass(frozen=True)
class HeOpCounts:
    """HE-operator census for one layer."""

    he_mult: int
    he_rotate: int
    he_add: int = 0

    def __add__(self, other: "HeOpCounts") -> "HeOpCounts":
        return HeOpCounts(
            self.he_mult + other.he_mult,
            self.he_rotate + other.he_rotate,
            self.he_add + other.he_add,
        )


def conv_op_counts(
    layer: ConvLayer,
    params: BfvParameters,
    l_pt: int | None = None,
    windowed_rotations: bool = False,
) -> HeOpCounts:
    """Table IV, CNN rows.

    ``c_n`` is channels-per-ciphertext when the image fits (n >= w^2) and
    ciphertexts-per-channel otherwise.  ``windowed_rotations`` models
    Sched-IA with plaintext windowing: the input is rotated *before* the
    multiply, so each of the l_pt windowed ciphertexts needs its own
    rotation per filter tap ("the number of polynomials that must be
    computed grows proportionately", Section V-C).  Sched-PA rotates the
    single partial after the multiply.
    """
    n = params.n
    l_pt = params.l_pt if l_pt is None else l_pt
    rot_scale = l_pt if windowed_rotations else 1
    w2 = layer.he_w * layer.he_w
    fw2 = layer.fw * layer.fw
    ci, co = layer.ci, layer.co
    if n >= w2:
        cn = max(1, n // w2)
        he_mult = math.ceil(l_pt * ci * co * fw2 / cn)
        he_rotate = rot_scale * math.ceil(ci * co * fw2 / cn)
    else:
        cn = math.ceil(w2 / n)
        he_mult = l_pt * (2 * cn - 1) * ci * co * fw2
        he_rotate = rot_scale * (2 * cn - 1) * ci * co * (fw2 - 1)
    he_add = he_mult  # one accumulation per partial product
    return HeOpCounts(he_mult, he_rotate, he_add)


def fc_op_counts(
    layer: FCLayer,
    params: BfvParameters,
    l_pt: int | None = None,
    windowed_rotations: bool = False,
) -> HeOpCounts:
    """Table IV, FC rows (all four n-vs-ni/no cases)."""
    n = params.n
    l_pt = params.l_pt if l_pt is None else l_pt
    rot_scale = l_pt if windowed_rotations else 1
    ni, no = layer.ni, layer.no
    he_mult = math.ceil(l_pt * ni * no / n)
    if n >= ni and n >= no:
        he_rotate = math.ceil(ni * no / n) - 1 + _log2_int(n // max(1, no))
    elif n >= ni:  # n < no
        he_rotate = math.ceil((ni - 1) * no / n)
    elif n >= no:  # n < ni
        he_rotate = math.ceil((no + _log2_int(n // max(1, no))) * ni / n)
    else:  # n < ni and n < no
        he_rotate = math.ceil((n - 1) * ni * no / (n * n))
    he_add = he_mult
    return HeOpCounts(he_mult, max(0, rot_scale * he_rotate), he_add)


def _log2_int(value: int) -> int:
    return max(0, int(math.ceil(math.log2(value)))) if value > 1 else 0


def layer_op_counts(
    layer: LinearLayer,
    params: BfvParameters,
    l_pt: int | None = None,
    windowed_rotations: bool = False,
) -> HeOpCounts:
    if isinstance(layer, ConvLayer):
        return conv_op_counts(layer, params, l_pt, windowed_rotations)
    if isinstance(layer, FCLayer):
        return fc_op_counts(layer, params, l_pt, windowed_rotations)
    raise TypeError(f"not a linear layer: {layer!r}")


# -- reduction to integer multiplications -------------------------------------

#: Machine word width of the software substrate (SEAL's 60-bit limbs).
WORD_BITS = 60


def word_limbs(params: BfvParameters) -> int:
    """Number of machine-word limbs representing q: ceil(log q / 60)."""
    coeff_bits = params.coeff_modulus.bit_length()
    return max(1, math.ceil(coeff_bits / WORD_BITS))


def word_cost_factor(params: BfvParameters) -> int:
    """Relative cost of one modular multiplication at this q width.

    Aggressive HE parameters "reduce the cost of each operation (e.g.,
    using smaller data types)" (Section I).  A modulus wider than one
    machine word costs quadratically more per product (schoolbook
    multiprecision arithmetic, as in the SEAL 2.3.1 substrate the paper
    profiles): the paper's own tuned configurations stay at 60-bit q for
    exactly this reason.
    """
    limbs = word_limbs(params)
    return limbs * limbs


def int_mults_per_he_mult(params: BfvParameters) -> int:
    """2n modular multiplications at the q word width."""
    return 2 * params.n * BARRETT_INT_MULTS * word_cost_factor(params)


def int_mults_per_ntt(params: BfvParameters) -> int:
    """n/2 * log2 n Harvey butterflies at the q word width."""
    n = params.n
    return (n // 2) * (n.bit_length() - 1) * HARVEY_INT_MULTS * word_cost_factor(params)


def int_mults_per_he_rotate(params: BfvParameters) -> int:
    """2*l_ct polynomial products plus (l_ct + 1) NTTs."""
    l_ct = params.l_ct
    return (
        2 * l_ct * params.n * BARRETT_INT_MULTS * word_cost_factor(params)
        + (l_ct + 1) * int_mults_per_ntt(params)
    )


def layer_int_mults(
    layer: LinearLayer,
    params: BfvParameters,
    l_pt: int | None = None,
    windowed_rotations: bool = False,
) -> int:
    """Total integer multiplications for a layer (the Fig. 3 x-axis)."""
    ops = layer_op_counts(layer, params, l_pt, windowed_rotations)
    return (
        ops.he_mult * int_mults_per_he_mult(params)
        + ops.he_rotate * int_mults_per_he_rotate(params)
    )


def layer_ntt_count(layer: LinearLayer, params: BfvParameters) -> int:
    """NTT invocations for the layer (all inside HE_Rotate)."""
    ops = layer_op_counts(layer, params)
    return ops.he_rotate * (params.l_ct + 1)


@dataclass(frozen=True)
class KernelIntMults:
    """Integer-mult split by kernel, for profiling-style breakdowns."""

    ntt: int
    rotate_other: int  # HE_Rotate's SIMD products (excluding its NTTs)
    mult: int
    add: int

    @property
    def total(self) -> int:
        return self.ntt + self.rotate_other + self.mult + self.add


def layer_kernel_int_mults(layer: LinearLayer, params: BfvParameters) -> KernelIntMults:
    """Per-kernel integer-mult census (drives the Figure 7 breakdown)."""
    ops = layer_op_counts(layer, params)
    width_cost = word_cost_factor(params)
    ntt = ops.he_rotate * (params.l_ct + 1) * int_mults_per_ntt(params)
    rotate_other = (
        ops.he_rotate * 2 * params.l_ct * params.n * BARRETT_INT_MULTS * width_cost
    )
    mult = ops.he_mult * int_mults_per_he_mult(params)
    # HE_Add has no multiplications; charge its modular adds as an
    # equivalent fraction (adds are ~an order cheaper than mults).
    add = ops.he_add * 2 * params.n * width_cost // 8
    return KernelIntMults(ntt=ntt, rotate_other=rotate_other, mult=mult, add=add)
