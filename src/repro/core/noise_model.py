"""HE-PTune noise model (Tables III and V of the paper).

Two estimation modes:

* ``worst`` -- the literal worst-case bounds of Table III, which the paper
  shows lead to needlessly conservative parameters;
* ``practical`` -- Cheetah's theoretically-motivated, empirically-derived
  model (Section IV-B): encryption noise is an independent bounded
  discrete Gaussian (IBDG), sums of IBDG variables stay IBDG with summed
  variances, so aggregates scale with sqrt(#terms) instead of #terms.  A
  single tail factor ``z`` chosen from the decryption-failure bound
  (:mod:`repro.core.failure`) converts the output standard deviation into
  a bound exceeded with probability below 1e-10.

The schedule matters (Section V): Sched-PA (Cheetah) grows noise as
``eta_M * v0 + eta_A`` per partial, Sched-IA (Gazelle/prior art) as
``eta_M * (v0 + eta_A)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from ..bfv.params import BfvParameters, noise_bound
from ..nn.layers import ConvLayer, FCLayer, LinearLayer
from .failure import tail_factor

#: Target decryption-failure probability (Section IV-B).
FAILURE_PROBABILITY = 1e-10


class Schedule(Enum):
    """Dot-product operation orderings (Figure 5)."""

    INPUT_ALIGNED = "sched-ia"  # rotate, then multiply (Gazelle, prior art)
    PARTIAL_ALIGNED = "sched-pa"  # multiply, then rotate partials (Cheetah)


class NoiseMode(Enum):
    WORST = "worst"
    PRACTICAL = "practical"


@dataclass(frozen=True)
class NoiseEstimate:
    """Predicted output noise and the remaining budget it implies."""

    output_noise: float  # infinity-norm estimate of the noise term v
    budget_bits: float  # log2(q / 2t) - log2(output_noise)

    @property
    def decryptable(self) -> bool:
        return self.budget_bits > 0.0


def _aggregate(count: float, mode: NoiseMode) -> float:
    """Sum of ``count`` comparable independent terms.

    Worst case adds magnitudes; the practical IBDG model adds variances,
    so magnitudes grow with sqrt(count).
    """
    count = max(count, 1.0)
    return count if mode is NoiseMode.WORST else math.sqrt(count)


def fresh_noise(params: BfvParameters, mode: NoiseMode = NoiseMode.PRACTICAL) -> float:
    """Noise v0 in a fresh ciphertext (Table III first row: 2 n B^2)."""
    b = noise_bound(params.sigma)
    if mode is NoiseMode.WORST:
        return 2.0 * params.n * b * b
    # v0 = e0 + e1 s - e u: ~2n products of two IBDG/ternary terms.
    return tail_factor(FAILURE_PROBABILITY) * b * math.sqrt(2.0 * params.n / 3.0)


def eta_mult(
    params: BfvParameters,
    mode: NoiseMode = NoiseMode.PRACTICAL,
    weight_bits: int | None = None,
    l_pt: int | None = None,
) -> float:
    """Multiplicative noise factor of HE_Mult (Table III: n l_pt Wdcmp / 2).

    ``weight_bits`` optionally caps the weight magnitude below the
    decomposition window (Sched-PA multiplies by raw quantized weights,
    so the factor is set by the actual weight precision, not by t).
    """
    l_pt = params.l_pt if l_pt is None else l_pt
    if weight_bits is None:
        w_bound = params.w_dcmp / 2.0
    else:
        w_bound = min(params.w_dcmp, 2.0 ** weight_bits) / 2.0
    if mode is NoiseMode.WORST:
        return params.n * l_pt * w_bound
    return math.sqrt(params.n * l_pt / 3.0) * w_bound


def eta_rotate(params: BfvParameters, mode: NoiseMode = NoiseMode.PRACTICAL) -> float:
    """Additive noise of HE_Rotate (Table III: l_ct Adcmp B n / 2)."""
    b = noise_bound(params.sigma)
    if mode is NoiseMode.WORST:
        return params.l_ct * params.a_dcmp * b * params.n / 2.0
    return math.sqrt(params.l_ct * params.n / 3.0) * (params.a_dcmp / 2.0) * b


def conv_output_noise(
    layer: ConvLayer,
    params: BfvParameters,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
    mode: NoiseMode = NoiseMode.PRACTICAL,
    weight_bits: int | None = None,
    l_pt: int | None = None,
) -> float:
    """Table V, CNN rows, for either schedule."""
    n = params.n
    w2 = layer.he_w * layer.he_w
    fw2 = layer.fw * layer.fw
    ci = layer.ci
    v0 = fresh_noise(params, mode)
    eta_m = eta_mult(params, mode, weight_bits, l_pt)
    eta_a = eta_rotate(params, mode)
    if n >= w2:
        cn = max(1, n // w2)
        mult_terms = fw2 * ci
        rot_terms = ci * (fw2 - 1 + (cn - 1) / cn)
    else:
        mult_terms = (2 * layer.fw - 1) * layer.fw * ci
        rot_terms = ci * (2 * layer.fw + 1) * (layer.fw - 1)
    return _combine(v0, eta_m, eta_a, mult_terms, rot_terms, schedule, mode)


def fc_output_noise(
    layer: FCLayer,
    params: BfvParameters,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
    mode: NoiseMode = NoiseMode.PRACTICAL,
    weight_bits: int | None = None,
    l_pt: int | None = None,
) -> float:
    """Table V, FC rows, for either schedule."""
    n = params.n
    ni = layer.ni
    v0 = fresh_noise(params, mode)
    eta_m = eta_mult(params, mode, weight_bits, l_pt)
    eta_a = eta_rotate(params, mode)
    if n >= ni:
        mult_terms = ni
        rot_terms = ni - 1
    else:
        mult_terms = ni
        rot_terms = ni * (n - 1) / n
    return _combine(v0, eta_m, eta_a, mult_terms, rot_terms, schedule, mode)


def _combine(
    v0: float,
    eta_m: float,
    eta_a: float,
    mult_terms: float,
    rot_terms: float,
    schedule: Schedule,
    mode: NoiseMode,
) -> float:
    """Assemble layer noise from per-operator factors.

    Sched-PA: partials are eta_M * v0 each, rotated afterwards (additive
    eta_A), then summed: ``agg(mult) * eta_M * v0 + agg(rot) * eta_A``.
    Sched-IA: the input is rotated *before* each multiply, so the
    multiplicative factor applies to (v0 + eta_A).
    """
    if schedule is Schedule.PARTIAL_ALIGNED:
        return _aggregate(mult_terms, mode) * eta_m * v0 + _aggregate(rot_terms, mode) * eta_a
    inflated = v0 + eta_a
    return _aggregate(mult_terms, mode) * eta_m * inflated + _aggregate(rot_terms, mode) * eta_a


def layer_output_noise(
    layer: LinearLayer,
    params: BfvParameters,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
    mode: NoiseMode = NoiseMode.PRACTICAL,
    weight_bits: int | None = None,
    l_pt: int | None = None,
) -> float:
    if isinstance(layer, ConvLayer):
        return conv_output_noise(layer, params, schedule, mode, weight_bits, l_pt)
    if isinstance(layer, FCLayer):
        return fc_output_noise(layer, params, schedule, mode, weight_bits, l_pt)
    raise TypeError(f"not a linear layer: {layer!r}")


def remaining_budget_bits(
    layer: LinearLayer,
    params: BfvParameters,
    schedule: Schedule = Schedule.PARTIAL_ALIGNED,
    mode: NoiseMode = NoiseMode.PRACTICAL,
    weight_bits: int | None = None,
    l_pt: int | None = None,
) -> NoiseEstimate:
    """Remaining noise budget after the layer (negative -> will not decrypt).

    Dividing q/(2t) by the output noise and taking the log gives bits of
    remaining budget (Section IV-B).
    """
    noise = layer_output_noise(layer, params, schedule, mode, weight_bits, l_pt)
    capacity = params.noise_capacity_bits
    budget = capacity - math.log2(max(noise, 1.0))
    return NoiseEstimate(output_noise=noise, budget_bits=budget)
