"""HE-PTune: analytical HE-parameter design-space exploration (Section IV).

Given a layer's hyperparameters, HE-PTune sweeps BFV parameter candidates
``(n, t, q, Wdcmp, Adcmp)``, rejects any whose predicted remaining noise
budget is negative (over 99% of the space, Section IV-C) or that fail
128-bit RLWE security, and returns the feasible candidate with the fewest
total integer multiplications.  Because the models are analytical, the
whole space evaluates in milliseconds per layer.

Candidates are represented by :class:`ModelParams`, a lightweight stand-in
for :class:`repro.bfv.params.BfvParameters` that avoids prime generation
during the sweep; ``ModelParams.realize()`` instantiates the winner as a
real, usable parameter set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from ..bfv.params import BfvParameters, DEFAULT_SIGMA
from ..bfv.security import is_secure, max_coeff_modulus_bits
from ..nn.layers import LinearLayer, required_plain_bits
from ..nn.models import Network
from ..nn.quantize import DEFAULT_ACTIVATION_BITS, DEFAULT_WEIGHT_BITS
from .noise_model import (
    NoiseEstimate,
    NoiseMode,
    Schedule,
    remaining_budget_bits,
)
from .perf_model import HeOpCounts, layer_int_mults, layer_op_counts


@dataclass(frozen=True)
class ModelParams:
    """Analytical BFV parameter candidate (duck-types BfvParameters)."""

    n: int
    plain_bits: int
    coeff_bits: int
    w_dcmp_bits: int
    a_dcmp_bits: int
    sigma: float = DEFAULT_SIGMA

    @property
    def plain_modulus(self) -> int:
        return 1 << self.plain_bits

    @property
    def coeff_modulus(self) -> int:
        return 1 << self.coeff_bits

    @property
    def w_dcmp(self) -> int:
        return 1 << self.w_dcmp_bits

    @property
    def a_dcmp(self) -> int:
        return 1 << self.a_dcmp_bits

    @property
    def l_pt(self) -> int:
        return max(1, math.ceil(self.plain_bits / self.w_dcmp_bits))

    @property
    def l_ct(self) -> int:
        return max(1, math.ceil(self.coeff_bits / self.a_dcmp_bits))

    @property
    def noise_capacity_bits(self) -> float:
        return float(self.coeff_bits - self.plain_bits - 1)

    def realize(self, require_security: bool = True) -> BfvParameters:
        """Instantiate as a concrete, usable BFV parameter set."""
        return BfvParameters.create(
            n=self.n,
            plain_bits=self.plain_bits,
            coeff_bits=self.coeff_bits,
            w_dcmp_bits=self.w_dcmp_bits,
            a_dcmp_bits=self.a_dcmp_bits,
            require_security=require_security,
        )

    def describe(self) -> str:
        return (
            f"n={self.n}, log t={self.plain_bits}, log q={self.coeff_bits}, "
            f"Wdcmp=2^{self.w_dcmp_bits} (l_pt={self.l_pt}), "
            f"Adcmp=2^{self.a_dcmp_bits} (l_ct={self.l_ct})"
        )


@dataclass(frozen=True)
class Candidate:
    """One evaluated point of the HE parameter space (a Fig. 3 blue dot)."""

    params: ModelParams
    op_counts: HeOpCounts
    int_mults: int
    noise: NoiseEstimate

    @property
    def feasible(self) -> bool:
        return self.noise.decryptable


@dataclass(frozen=True)
class TunedLayer:
    """The optimal configuration HE-PTune selected for one layer."""

    layer: LinearLayer
    params: ModelParams
    op_counts: HeOpCounts
    int_mults: int
    noise: NoiseEstimate
    schedule: Schedule


@dataclass(frozen=True)
class SearchSpace:
    """The HE-parameter grid HE-PTune sweeps."""

    n_options: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384)
    q_bits_step: int = 6
    q_bits_min: int = 24
    a_dcmp_bits_options: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 28)
    w_dcmp_bits_options: tuple[int, ...] = (4, 6, 8, 10, 12, 16, 20)
    allow_no_windowing: bool = True

    def q_bits_options(self, n: int, security_level: int = 128) -> list[int]:
        ceiling = max_coeff_modulus_bits(n, security_level)
        options = list(range(self.q_bits_min, ceiling + 1, self.q_bits_step))
        if options and options[-1] != ceiling:
            options.append(ceiling)
        return options


class HePTune:
    """Per-layer HE parameter tuner (the HE-PTune box of Figure 1)."""

    def __init__(
        self,
        space: SearchSpace | None = None,
        schedule: Schedule = Schedule.PARTIAL_ALIGNED,
        mode: NoiseMode = NoiseMode.PRACTICAL,
        weight_bits: int = DEFAULT_WEIGHT_BITS,
        activation_bits: int = DEFAULT_ACTIVATION_BITS,
        margin_bits: float = 0.0,
        security_level: int = 128,
    ):
        self.space = space or SearchSpace()
        self.schedule = schedule
        self.mode = mode
        self.weight_bits = weight_bits
        self.activation_bits = activation_bits
        self.margin_bits = margin_bits
        self.security_level = security_level

    # -- candidate enumeration ------------------------------------------------

    def plain_bits_for(self, layer: LinearLayer) -> int:
        return required_plain_bits(layer, self.weight_bits, self.activation_bits)

    def _w_dcmp_options(self, plain_bits: int) -> list[int]:
        if self.schedule is Schedule.PARTIAL_ALIGNED:
            # Sched-PA multiplies raw quantized weights: no plaintext
            # decomposition, the effective window is the weight precision.
            return [self.weight_bits]
        options = [bits for bits in self.space.w_dcmp_bits_options if bits < plain_bits]
        if self.space.allow_no_windowing or not options:
            options.append(plain_bits)  # no decomposition
        return options

    def candidates(self, layer: LinearLayer) -> Iterator[Candidate]:
        """Every point of the search space with its predicted cost/noise."""
        plain_bits = self.plain_bits_for(layer)
        for n in self.space.n_options:
            for q_bits in self.space.q_bits_options(n, self.security_level):
                if q_bits <= plain_bits + 1:
                    continue
                for w_bits in self._w_dcmp_options(plain_bits):
                    for a_bits in self.space.a_dcmp_bits_options:
                        if a_bits > q_bits:
                            continue
                        params = ModelParams(
                            n=n,
                            plain_bits=plain_bits,
                            coeff_bits=q_bits,
                            w_dcmp_bits=w_bits,
                            a_dcmp_bits=a_bits,
                        )
                        yield self.evaluate(layer, params)

    def evaluate(self, layer: LinearLayer, params: ModelParams) -> Candidate:
        """Score one parameter set with the performance and noise models.

        Sched-PA multiplies raw quantized weights, so it carries no
        plaintext decomposition: l_pt is forced to 1 and the HE_Mult noise
        factor is bounded by the actual weight precision.
        """
        if self.schedule is Schedule.PARTIAL_ALIGNED:
            weight_bits: int | None = self.weight_bits
            l_pt = 1
            windowed = False
        else:
            weight_bits = None
            l_pt = params.l_pt
            windowed = True
        noise = remaining_budget_bits(
            layer, params, self.schedule, self.mode, weight_bits, l_pt
        )
        ops = layer_op_counts(layer, params, l_pt, windowed)
        mults = layer_int_mults(layer, params, l_pt, windowed)
        return Candidate(params=params, op_counts=ops, int_mults=mults, noise=noise)

    # -- tuning -----------------------------------------------------------------

    def tune_layer(self, layer: LinearLayer) -> TunedLayer:
        """Fastest feasible configuration for one layer."""
        best: Candidate | None = None
        for candidate in self.candidates(layer):
            if candidate.noise.budget_bits <= self.margin_bits:
                continue
            if best is None or candidate.int_mults < best.int_mults:
                best = candidate
        if best is None:
            raise RuntimeError(
                f"no feasible HE parameters for layer {layer.name!r}; "
                "widen the search space or lower precision"
            )
        return TunedLayer(
            layer=layer,
            params=best.params,
            op_counts=best.op_counts,
            int_mults=best.int_mults,
            noise=best.noise,
            schedule=self.schedule,
        )

    def tune_network(self, network: Network) -> list[TunedLayer]:
        """Per-layer tuning for every linear layer of a model."""
        return [self.tune_layer(layer) for layer in network.linear_layers]

    def tune_network_global(self, network: Network) -> list[TunedLayer]:
        """Single best configuration shared by all layers (Gazelle-style).

        The paper's red stars: "Gazelle uses the same sets of HE
        parameters for all layers", provisioned for the worst-case layer.
        """
        layers = network.linear_layers
        plain_bits = max(self.plain_bits_for(layer) for layer in layers)
        best_total: int | None = None
        best_params: ModelParams | None = None
        for n in self.space.n_options:
            for q_bits in self.space.q_bits_options(n, self.security_level):
                if q_bits <= plain_bits + 1:
                    continue
                for w_bits in self._w_dcmp_options(plain_bits):
                    for a_bits in self.space.a_dcmp_bits_options:
                        if a_bits > q_bits:
                            continue
                        params = ModelParams(
                            n=n,
                            plain_bits=plain_bits,
                            coeff_bits=q_bits,
                            w_dcmp_bits=w_bits,
                            a_dcmp_bits=a_bits,
                        )
                        total = 0
                        feasible = True
                        for layer in layers:
                            candidate = self.evaluate(layer, params)
                            if candidate.noise.budget_bits <= self.margin_bits:
                                feasible = False
                                break
                            total += candidate.int_mults
                        if feasible and (best_total is None or total < best_total):
                            best_total = total
                            best_params = params
        if best_params is None:
            raise RuntimeError(
                f"no single HE parameter set is feasible for all layers of "
                f"{network.name}"
            )
        return [
            TunedLayer(
                layer=layer,
                params=best_params,
                op_counts=(c := self.evaluate(layer, best_params)).op_counts,
                int_mults=c.int_mults,
                noise=c.noise,
                schedule=self.schedule,
            )
            for layer in layers
        ]


def infeasible_fraction(tuner: HePTune, layer: LinearLayer) -> float:
    """Fraction of the DSE space with negative remaining budget.

    The paper reports over 99% of evaluated points fail (Section IV-C).
    """
    total = 0
    infeasible = 0
    for candidate in tuner.candidates(layer):
        total += 1
        if not candidate.feasible:
            infeasible += 1
    return infeasible / total if total else 0.0
