"""The three system configurations compared throughout the paper.

* **Gazelle** (baseline): Sched-IA dot products, one global HE parameter
  set shared by every layer, plaintext windowing + ciphertext
  decomposition.
* **HE-PTune**: Sched-IA dot products, per-layer tuned parameters.
* **HE-PTune + Sched-PA** (Cheetah): partial-aligned dot products with
  per-layer tuned parameters and no plaintext decomposition.

Speedups are ratios of total integer multiplications, the paper's
performance currency (Figure 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..nn.models import MNIST_MODELS, Network
from .noise_model import NoiseMode, Schedule
from .ptune import HePTune, SearchSpace, TunedLayer


@dataclass(frozen=True)
class SystemConfig:
    """One fully tuned system configuration for a model."""

    name: str
    network: Network
    tuned_layers: list[TunedLayer]

    @property
    def total_int_mults(self) -> int:
        return sum(layer.int_mults for layer in self.tuned_layers)

    @property
    def per_layer_int_mults(self) -> list[int]:
        return [layer.int_mults for layer in self.tuned_layers]


@dataclass(frozen=True)
class SpeedupReport:
    """Gazelle vs HE-PTune vs Cheetah for one model (a Figure 6 group)."""

    network: Network
    gazelle: SystemConfig
    ptune: SystemConfig
    cheetah: SystemConfig

    @property
    def ptune_speedup(self) -> float:
        return self.gazelle.total_int_mults / self.ptune.total_int_mults

    @property
    def cheetah_speedup(self) -> float:
        return self.gazelle.total_int_mults / self.cheetah.total_int_mults

    @property
    def sched_pa_speedup(self) -> float:
        """Additional speedup from Sched-PA on top of HE-PTune."""
        return self.ptune.total_int_mults / self.cheetah.total_int_mults

    def per_layer_speedups(self) -> list[float]:
        return [
            g / c
            for g, c in zip(
                self.gazelle.per_layer_int_mults, self.cheetah.per_layer_int_mults
            )
        ]


#: Gazelle's fixed plaintext windowing base (10-bit windows).
GAZELLE_W_DCMP_BITS = 10

#: Gazelle's fixed ciphertext (rotation key) decomposition base.  Chosen
#: worst-case-safe and small; Cheetah's tuned bases come out "8 to 16 more
#: bits" (Section V-C).
GAZELLE_A_DCMP_BITS = 7


def gazelle_search_space() -> SearchSpace:
    """Gazelle's parameter freedom: n and q only, bases hard-coded."""
    return SearchSpace(
        a_dcmp_bits_options=(GAZELLE_A_DCMP_BITS,),
        w_dcmp_bits_options=(GAZELLE_W_DCMP_BITS,),
        allow_no_windowing=False,
    )


def gazelle_configuration(
    network: Network, space: SearchSpace | None = None, mode: NoiseMode = NoiseMode.WORST
) -> SystemConfig:
    """The state-of-the-art baseline the paper measures against.

    Gazelle provisions one parameter set for the whole network using
    worst-case noise bounds ("existing solutions rely on over-provisioning
    noise budgets", Section IV), input-aligned scheduling, and its
    implementation's fixed decomposition bases.
    """
    tuner = HePTune(
        space=space or gazelle_search_space(), schedule=Schedule.INPUT_ALIGNED, mode=mode
    )
    return SystemConfig("Gazelle", network, tuner.tune_network_global(network))


def ptune_configuration(
    network: Network, space: SearchSpace | None = None, mode: NoiseMode = NoiseMode.PRACTICAL
) -> SystemConfig:
    """HE-PTune alone: per-layer tuning of Gazelle's Sched-IA kernels.

    The middle bar of Figure 6.  HE-PTune tunes ring dimension, moduli
    and the plaintext window (a runtime parameter of Gazelle's windowed
    multiplication) per layer with the practical noise model.  The
    ciphertext decomposition base stays at Gazelle's value: it is baked
    into the rotation-key structure, and only Sched-PA's reordering makes
    large bases noise-feasible.
    """
    middle_space = space or SearchSpace(
        a_dcmp_bits_options=(GAZELLE_A_DCMP_BITS,),
        allow_no_windowing=False,
    )
    tuner = HePTune(space=middle_space, schedule=Schedule.INPUT_ALIGNED, mode=mode)
    return SystemConfig("HE-PTune", network, tuner.tune_network(network))


def cheetah_configuration(
    network: Network, space: SearchSpace | None = None, mode: NoiseMode = NoiseMode.PRACTICAL
) -> SystemConfig:
    tuner = HePTune(space=space, schedule=Schedule.PARTIAL_ALIGNED, mode=mode)
    return SystemConfig("HE-PTune+Sched-PA", network, tuner.tune_network(network))


def speedup_report(network: Network, space: SearchSpace | None = None) -> SpeedupReport:
    """Full three-way comparison for one model."""
    return SpeedupReport(
        network=network,
        gazelle=gazelle_configuration(network),
        ptune=ptune_configuration(network, space),
        cheetah=cheetah_configuration(network, space),
    )


def harmonic_mean(values: list[float]) -> float:
    if not values:
        raise ValueError("harmonic mean of empty sequence")
    return len(values) / sum(1.0 / v for v in values)


@dataclass(frozen=True)
class FleetSummary:
    """Figure 6 summary statistics across the model zoo."""

    reports: list[SpeedupReport]

    def _subset(self, include_mnist: bool) -> list[SpeedupReport]:
        if include_mnist:
            return list(self.reports)
        return [r for r in self.reports if r.network.name not in MNIST_MODELS]

    def ptune_harmonic_mean(self, include_mnist: bool = True) -> float:
        return harmonic_mean([r.ptune_speedup for r in self._subset(include_mnist)])

    def sched_pa_harmonic_mean(self, include_mnist: bool = True) -> float:
        return harmonic_mean([r.sched_pa_speedup for r in self._subset(include_mnist)])

    def combined_harmonic_mean(self, include_mnist: bool = True) -> float:
        return harmonic_mean([r.cheetah_speedup for r in self._subset(include_mnist)])

    def max_combined_speedup(self) -> float:
        return max(r.cheetah_speedup for r in self.reports)

    def max_sched_pa_speedup(self) -> float:
        return max(r.sched_pa_speedup for r in self.reports)
